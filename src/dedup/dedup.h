// Deduplicator: ties the three steps of duplicate identification together
// (paper §2.1): chunking (done by the caller — Shredder or a baseline
// chunker), hashing (SHA-256 per chunk, or precomputed digests from the GPU
// fingerprint stage) and matching (ChunkIndex + ChunkStore).
//
// Also provides dedup_efficiency(), the measurement used to compare chunking
// schemes: given two versions of a payload, how many bytes of the second
// version are found in the store populated by the first.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "chunking/chunk.h"
#include "common/bytes.h"
#include "dedup/digest.h"
#include "dedup/index.h"
#include "dedup/store.h"

namespace shredder::dedup {

struct DedupStats {
  std::uint64_t chunks_total = 0;
  std::uint64_t chunks_duplicate = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t bytes_duplicate = 0;

  double dedup_ratio() const noexcept {
    return bytes_total == 0 ? 0.0
                            : static_cast<double>(bytes_duplicate) /
                                  static_cast<double>(bytes_total);
  }
};

class Deduplicator {
 public:
  // Baseline index with a flat per-probe cost (the historical default).
  explicit Deduplicator(double index_probe_seconds = 0.8e-6);
  // Full backend selection: kPaperBaseline or the ChunkStash-style kSparse
  // index (docs/dedup_index.md).
  explicit Deduplicator(const IndexConfig& index_config);

  // Ingests `data` pre-split into `chunks`; stores unique chunks, counts
  // duplicates. Returns the stats for this ingestion only. Hashes every
  // chunk on the host.
  DedupStats ingest(ByteSpan data, const std::vector<chunking::Chunk>& chunks);

  // Same, but with digests precomputed elsewhere (the on-device fingerprint
  // stage). `digests[i]` must be the canonical hash of `chunks[i]` — the
  // ChunkStore recheck catches mismatches in debug builds. Throws
  // std::invalid_argument when the two vectors disagree in length.
  DedupStats ingest(ByteSpan data, const std::vector<chunking::Chunk>& chunks,
                    const std::vector<ChunkDigest>& digests);

  const IndexBackend& index() const noexcept { return *index_; }
  const ChunkStore& store() const noexcept { return store_; }
  ChunkStore& store() noexcept { return store_; }

 private:
  DedupStats ingest_impl(ByteSpan data,
                         const std::vector<chunking::Chunk>& chunks,
                         const std::vector<ChunkDigest>* digests);

  std::unique_ptr<IndexBackend> index_;
  ChunkStore store_;
  std::uint64_t next_offset_ = 0;
};

}  // namespace shredder::dedup
