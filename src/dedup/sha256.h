// SHA-256 (FIPS 180-4), from scratch.
//
// Offered alongside SHA-1 for deployments that want a stronger chunk hash;
// the backup case study defaults to SHA-1 (the common choice in 2012-era
// dedup systems), tests cover both against the NIST vectors.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace shredder::dedup {

struct Sha256Digest {
  std::array<std::uint8_t, 32> bytes{};

  friend bool operator==(const Sha256Digest&, const Sha256Digest&) = default;
  std::string hex() const;
  std::uint64_t prefix64() const noexcept;
};

class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(ByteSpan data) noexcept;
  Sha256Digest finish() noexcept;  // resets afterwards

  static Sha256Digest hash(ByteSpan data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t h_[8];
  std::uint64_t length_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

struct Sha256DigestHash {
  std::size_t operator()(const Sha256Digest& d) const noexcept {
    return static_cast<std::size_t>(d.prefix64());
  }
};

}  // namespace shredder::dedup
