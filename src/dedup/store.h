// Content-addressed chunk store: holds one copy of each unique chunk and
// reference counts it. The backup site (paper §7.2) keeps one of these to
// reconstruct images from chunk/pointer streams.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/bytes.h"
#include "common/mutex.h"
#include "dedup/digest.h"

namespace shredder::dedup {

// What a put() did: inserted a brand-new chunk, or found the digest already
// stored and added one reference to it. Callers that must not silently
// double-count (a shared store serving many tenants) branch on this.
enum class PutOutcome { kInserted, kRefAdded };

class ChunkStore {
 public:
  ChunkStore() = default;

  // Inserts a chunk with one reference, or — if the digest already exists —
  // adds a reference to the stored copy, reported explicitly via the
  // outcome. The digest must be the canonical chunk hash (SHA-256) of
  // `data` — checked in debug builds, including digests precomputed on the
  // device by the fingerprint stage.
  PutOutcome put(const ChunkDigest& digest, ByteSpan data);
  // Adopting overload: moves `data` into the store when the chunk is new,
  // avoiding the copy on the zero-copy wire path. On kRefAdded the vector
  // is simply dropped.
  PutOutcome put(const ChunkDigest& digest, ByteVec&& data);

  // Copy of the chunk payload, or nullopt if unknown.
  std::optional<ByteVec> get(const ChunkDigest& digest) const;

  bool contains(const ChunkDigest& digest) const;

  // Adds a reference to an existing chunk. Returns false if unknown.
  bool add_ref(const ChunkDigest& digest);

  // Drops one reference (a tenant deleted a snapshot that used this chunk);
  // the chunk is reclaimed when its last reference goes. Returns the
  // remaining reference count, or nullopt if the digest is unknown.
  std::optional<std::uint64_t> release_ref(const ChunkDigest& digest);

  // Removes a chunk outright regardless of its reference count (offline
  // garbage collection / forced eviction). Returns false if unknown.
  bool erase(const ChunkDigest& digest);

  std::uint64_t unique_chunks() const;
  std::uint64_t unique_bytes() const;
  std::uint64_t total_refs() const;

 private:
  struct Entry {
    ByteVec data;
    std::uint64_t refs = 1;
  };
  mutable Mutex mutex_;
  std::unordered_map<ChunkDigest, Entry, ChunkDigestHash> chunks_
      GUARDED_BY(mutex_);
  std::uint64_t unique_bytes_ GUARDED_BY(mutex_) = 0;
  std::uint64_t total_refs_ GUARDED_BY(mutex_) = 0;
};

}  // namespace shredder::dedup
