// Content-addressed chunk store: holds one copy of each unique chunk and
// reference counts it. The backup site (paper §7.2) keeps one of these to
// reconstruct images from chunk/pointer streams.
//
// Lifecycle (docs/retention.md): every put/add_ref takes one reference,
// every release_ref drops one. In immediate mode the chunk is freed the
// moment its last reference goes; in deferred-reclaim mode (the retention
// subsystem's GC epoch/pin protocol) the entry is instead parked at zero
// refs — still resurrectable by add_ref/put — until an explicit
// sweep_zero_refs() decides it is provably unreferenced and frees it.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/bytes.h"
#include "common/mutex.h"
#include "dedup/digest.h"

namespace shredder::dedup {

// What a put() did: inserted a brand-new chunk, or found the digest already
// stored and added one reference to it. Callers that must not silently
// double-count (a shared store serving many tenants) branch on this.
enum class PutOutcome { kInserted, kRefAdded };

// What a release_ref() did. Every state a caller could previously only
// infer from optional-vs-value is now named; kNoRefs and kUnknownDigest
// leave the store untouched so callers can treat them as typed errors.
enum class ReleaseOutcome {
  kLive,           // references remain; chunk stays resident
  kReclaimed,      // last reference dropped, chunk freed immediately
  kDeferred,       // last reference dropped, chunk parked at zero refs
                   // awaiting sweep_zero_refs (deferred-reclaim mode)
  kNoRefs,         // entry already at zero references (double release)
  kUnknownDigest,  // digest not in the store
};

// What an erase() did. Unknown digests were previously a silent `false`.
enum class EraseOutcome { kErased, kUnknownDigest };

// Point-in-time occupancy, handed to the observer after every mutation so
// consumers (retention wires these into obs::Registry gauges) track the
// store without polling. `chunks`/`bytes` include zero-ref parked entries;
// the zero_ref_* pair counts the reclaimable subset.
struct StoreOccupancy {
  std::uint64_t chunks = 0;
  std::uint64_t bytes = 0;
  std::uint64_t refs = 0;
  std::uint64_t zero_ref_chunks = 0;
  std::uint64_t zero_ref_bytes = 0;
};

// Result of one sweep_zero_refs() pass.
struct SweepStats {
  std::uint64_t scanned = 0;       // entries examined
  std::uint64_t freed_chunks = 0;  // zero-ref entries erased
  std::uint64_t freed_bytes = 0;
  std::uint64_t kept = 0;          // zero-ref entries retained by `keep`
};

class ChunkStore {
 public:
  // `deferred_reclaim` parks last-reference chunks at zero refs instead of
  // freeing them inline — the GC sweep (retention::RetentionManager)
  // reclaims them once no in-flight backup can still resurrect the digest.
  explicit ChunkStore(bool deferred_reclaim = false)
      : deferred_reclaim_(deferred_reclaim) {}

  // Occupancy observer, invoked after every mutating call while the store
  // lock is held (so snapshots are exact, never torn). The callback must be
  // cheap and must not re-enter the store. dedup/ sits below obs/ in the
  // module DAG, so gauge publication lives in the consumer (retention).
  using Observer = std::function<void(const StoreOccupancy&)>;
  void set_observer(Observer observer);

  // Inserts a chunk with one reference, or — if the digest already exists —
  // adds a reference to the stored copy, reported explicitly via the
  // outcome. A zero-ref parked entry is resurrected (kRefAdded). The digest
  // must be the canonical chunk hash (SHA-256) of `data` — checked in debug
  // builds, including digests precomputed on the device by the fingerprint
  // stage.
  PutOutcome put(const ChunkDigest& digest, ByteSpan data);
  // Adopting overload: moves `data` into the store when the chunk is new,
  // avoiding the copy on the zero-copy wire path. On kRefAdded the vector
  // is simply dropped.
  PutOutcome put(const ChunkDigest& digest, ByteVec&& data);

  // Copy of the chunk payload, or nullopt if unknown.
  std::optional<ByteVec> get(const ChunkDigest& digest) const;

  bool contains(const ChunkDigest& digest) const;

  // Adds a reference to an existing chunk, resurrecting a zero-ref parked
  // entry. Returns false if unknown.
  bool add_ref(const ChunkDigest& digest);

  // Drops one reference (a tenant deleted a snapshot that used this chunk).
  // Typed outcome per the enum above; `remaining`, when non-null, receives
  // the post-call reference count on kLive/kReclaimed/kDeferred and is
  // untouched on the error outcomes.
  ReleaseOutcome release_ref(const ChunkDigest& digest,
                             std::uint64_t* remaining = nullptr);

  // Removes a chunk outright regardless of its reference count (forced
  // eviction; the GC path uses sweep_zero_refs instead).
  EraseOutcome erase(const ChunkDigest& digest);

  // Frees zero-ref parked entries. `keep`, when set, vetoes individual
  // digests (the GC epoch protocol keeps digests zeroed too recently for
  // every in-flight backup to have observed). Runs under the store lock —
  // `keep` must be cheap and must not re-enter the store.
  SweepStats sweep_zero_refs(
      const std::function<bool(const ChunkDigest&)>& keep = {});

  // Current reference count, or nullopt if unknown. Zero means parked.
  std::optional<std::uint64_t> ref_count(const ChunkDigest& digest) const;

  // Crash recovery (docs/retention.md): replaces every entry's reference
  // count with counts[digest] — the occurrence totals recomputed from the
  // live snapshot manifests, which are the durable authority. Digests absent
  // from `counts` drop to zero references: parked in deferred-reclaim mode
  // (the next GC decides), freed immediately otherwise. Returns the digests
  // left at zero refs so the caller can re-seed its reclamation queue.
  std::vector<ChunkDigest> rebuild_refs(
      const std::unordered_map<ChunkDigest, std::uint64_t, ChunkDigestHash>&
          counts);

  std::uint64_t unique_chunks() const;
  std::uint64_t unique_bytes() const;
  std::uint64_t total_refs() const;
  std::uint64_t zero_ref_chunks() const;
  std::uint64_t zero_ref_bytes() const;
  StoreOccupancy occupancy() const;
  bool deferred_reclaim() const { return deferred_reclaim_; }

 private:
  struct Entry {
    ByteVec data;
    std::uint64_t refs = 1;
  };

  StoreOccupancy occupancy_locked() const REQUIRES(mutex_);
  void notify_locked() REQUIRES(mutex_);

  const bool deferred_reclaim_;
  mutable Mutex mutex_;
  std::unordered_map<ChunkDigest, Entry, ChunkDigestHash> chunks_
      GUARDED_BY(mutex_);
  std::uint64_t unique_bytes_ GUARDED_BY(mutex_) = 0;
  std::uint64_t total_refs_ GUARDED_BY(mutex_) = 0;
  std::uint64_t zero_ref_chunks_ GUARDED_BY(mutex_) = 0;
  std::uint64_t zero_ref_bytes_ GUARDED_BY(mutex_) = 0;
  Observer observer_ GUARDED_BY(mutex_);
};

}  // namespace shredder::dedup
