// Shared helpers for the figure/table reproduction benches.
//
// Every bench prints (a) the experiment id and paper reference, (b) the
// regenerated rows/series, and (c) the paper's reported shape next to ours,
// so EXPERIMENTS.md can be assembled from the raw output.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/stats.h"

namespace shredder::bench {

inline void print_header(const char* experiment_id, const char* title,
                         const char* paper_shape) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", experiment_id, title);
  std::printf("paper shape: %s\n", paper_shape);
  std::printf("==============================================================\n");
}

inline std::string mb_label(std::uint64_t bytes) {
  if (bytes >= 1024ull * 1024) {
    return std::to_string(bytes / (1024 * 1024)) + "M";
  }
  if (bytes >= 1024) return std::to_string(bytes / 1024) + "K";
  return std::to_string(bytes);
}

// Buffer-size sweep used by Figures 5, 6, 9, 11 and Table 2.
inline std::vector<std::uint64_t> paper_buffer_sweep() {
  return {16ull << 20, 32ull << 20, 64ull << 20, 128ull << 20, 256ull << 20};
}

}  // namespace shredder::bench
