// Table 2 — host spare cycles per core during asynchronous data transfer
// and kernel execution.
//
// Device execution time = async H2D copy + chunking kernel on a buffer of
// each size (the pre-coalescing kernel, as in the paper's measurement era);
// the host only pays the kernel-launch overhead and is otherwise idle,
// accumulating RDTSC ticks at 2.67 GHz.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "core/shredder.h"

int main() {
  using namespace shredder;
  using namespace shredder::core;
  bench::print_header(
      "T2", "Table 2: host spare cycles during async execution",
      "launch time ~0.03-0.09 ms, negligible vs execution; spare ticks grow "
      "linearly from ~3.0e7 (16M) to ~5.3e8 (256M)");

  TablePrinter t({"BufferSize", "DevExec(ms)", "Launch(ms)", "Total(ms)",
                  "SpareTicks"},
                 14);
  for (const auto buffer : bench::paper_buffer_sweep()) {
    ShredderConfig cfg;
    cfg.buffer_bytes = buffer;
    cfg.mode = GpuMode::kStreams;
    cfg.kernel.coalesced = false;
    Shredder shredder(cfg);
    SyntheticSource source(buffer, 7, cfg.host.reader_bw);
    const auto result = shredder.run(source);

    const double copy = result.mean_stage_seconds.transfer;
    const double kernel = result.mean_stage_seconds.kernel;
    const double launch = result.kernel_totals.launch_seconds /
                          static_cast<double>(result.n_buffers);
    const double device_exec = copy + kernel - launch;
    const double total = copy + kernel;
    const double ticks = device_exec * cfg.host.clock_hz;
    char tick_buf[32];
    std::snprintf(tick_buf, sizeof(tick_buf), "%.1e", ticks);
    t.add_row({bench::mb_label(buffer), TablePrinter::fmt(device_exec * 1e3, 2),
               TablePrinter::fmt(launch * 1e3, 2),
               TablePrinter::fmt(total * 1e3, 2), tick_buf});
  }
  t.print();
  std::printf("(SpareTicks = device-execution time x 2.67 GHz host clock; the "
              "streaming pipeline of Fig 8/9 exists to spend them)\n");
  return 0;
}
