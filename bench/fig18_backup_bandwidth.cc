// Figure 18 — consolidated cloud-backup bandwidth with varying image
// similarity (§7.3): Shredder-GPU vs the pthreads-CPU chunker, min/max
// chunk sizes enabled, 10 Gb/s image generation.
//
// Every snapshot is genuinely chunked, hashed, deduplicated against the
// server's index and reconstructed+verified at the backup site.
#include <cstdio>

#include "bench_util.h"
#include "backup/backup_server.h"
#include "common/stats.h"

int main() {
  using namespace shredder;
  using namespace shredder::backup;
  bench::print_header(
      "F18", "Figure 18: backup bandwidth vs segment-change probability",
      "Shredder (chunking + fingerprinting on-device) ~2.5x the pthreads "
      "baseline, near the 10 Gb/s target at high similarity, decaying as "
      "similarity drops (index+network bound); pthreads flat (chunking "
      "bound ~3 Gb/s)");

  ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = 64ull << 20;
  repo_cfg.segment_bytes = 1ull << 20;
  ImageRepository repo(repo_cfg);

  auto server_config = [&](ChunkerBackend backend) {
    BackupServerConfig cfg;
    cfg.backend = backend;
    cfg.shredder.buffer_bytes = 16ull << 20;
    // The GPU path hashes on-device too; otherwise the host SHA-256 stage
    // (~0.9 GB/s of spare cycles, Table 2) caps it at ~7 Gbps.
    cfg.fingerprint_on_device = backend == ChunkerBackend::kShredderGpu;
    return cfg;
  };

  TablePrinter t({"ChangeProb", "Pthreads-CPU", "Shredder-GPU", "UniqueData",
                  "DedupChunks", "Verified"},
                 14);
  std::uint64_t snapshot_id = 1;
  for (const double p : {0.05, 0.10, 0.15, 0.20, 0.25}) {
    // Fresh servers per point so each point deduplicates exactly one
    // snapshot against one baseline image, like the paper's per-probability
    // measurements.
    BackupServer cpu(server_config(ChunkerBackend::kPthreadsCpu));
    BackupServer gpu(server_config(ChunkerBackend::kShredderGpu));
    BackupAgent cpu_agent, gpu_agent;
    const auto base = repo.snapshot(0.0, snapshot_id);
    cpu.backup_image("base", as_bytes(base), repo, cpu_agent);
    gpu.backup_image("base", as_bytes(base), repo, gpu_agent);
    const auto snap = repo.snapshot(p, snapshot_id + 1000);
    const auto cpu_stats = cpu.backup_image("snap", as_bytes(snap), repo,
                                            cpu_agent);
    const auto gpu_stats = gpu.backup_image("snap", as_bytes(snap), repo,
                                            gpu_agent);
    snapshot_id += 2;
    t.add_row(
        {TablePrinter::fmt(p, 2),
         TablePrinter::fmt(cpu_stats.backup_bandwidth_gbps, 2) + " Gbps",
         TablePrinter::fmt(gpu_stats.backup_bandwidth_gbps, 2) + " Gbps",
         TablePrinter::fmt(100.0 * static_cast<double>(gpu_stats.unique_bytes) /
                               static_cast<double>(gpu_stats.bytes),
                           1) +
             "%",
         std::to_string(gpu_stats.duplicate_chunks) + "/" +
             std::to_string(gpu_stats.chunks),
         cpu_stats.verified && gpu_stats.verified ? "yes" : "NO"});
  }
  t.print();
  std::printf("(64 MB images, 1 MB similarity segments, 4 KB expected chunks "
              "with min 2 KB / max 16 KB, 10 Gb/s generation rate, GPU path "
              "fingerprints on-device; every backup reconstructed and "
              "verified at the backup site)\n");

  // --- Low-similarity sweep: baseline vs ChunkStash-style sparse index ---
  // §7.3 concedes the index is "not ChunkStash-grade": once hashing moves
  // on-device, its probes are what erodes bandwidth as similarity drops.
  // The sparse index (docs/dedup_index.md) takes the probe path back off
  // the critical path and restores the 10 Gb/s generation bound.
  std::printf("\nLow-similarity sweep (GPU path, 4 KB chunks): paper-baseline "
              "index vs ChunkStash-style sparse index\n");
  TablePrinter t2({"ChangeProb", "BaselineIdx", "SparseIdx", "IdxStage-base",
                   "IdxStage-sparse", "Verified"},
                  16);
  for (const double p : {0.25, 0.50, 0.75}) {
    auto sparse_config = server_config(ChunkerBackend::kShredderGpu);
    sparse_config.index.kind = dedup::IndexKind::kSparse;
    BackupServer baseline(server_config(ChunkerBackend::kShredderGpu));
    BackupServer sparse(sparse_config);
    BackupAgent agent_a, agent_b;
    const auto base = repo.snapshot(0.0, snapshot_id);
    baseline.backup_image("base", as_bytes(base), repo, agent_a);
    sparse.backup_image("base", as_bytes(base), repo, agent_b);
    const auto snap = repo.snapshot(p, snapshot_id + 2000);
    const auto base_stats =
        baseline.backup_image("snap", as_bytes(snap), repo, agent_a);
    const auto sparse_stats =
        sparse.backup_image("snap", as_bytes(snap), repo, agent_b);
    snapshot_id += 2;
    t2.add_row(
        {TablePrinter::fmt(p, 2),
         TablePrinter::fmt(base_stats.backup_bandwidth_gbps, 2) + " Gbps",
         TablePrinter::fmt(sparse_stats.backup_bandwidth_gbps, 2) + " Gbps",
         TablePrinter::fmt(base_stats.index_seconds * 1e3, 1) + " ms",
         TablePrinter::fmt(sparse_stats.index_seconds * 1e3, 1) + " ms",
         base_stats.verified && sparse_stats.verified ? "yes" : "NO"});
  }
  t2.print();
  std::printf("(sparse index: in-RAM cuckoo signatures + log-structured "
              "entry region + per-stream container prefetch; probes stay off "
              "the critical path, restoring the generation bound)\n");
  return 0;
}
