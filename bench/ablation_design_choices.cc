// Ablation benches for the design choices DESIGN.md calls out — not a paper
// figure, but the sweeps a reviewer would ask for:
//   (a) pinned-ring depth: how many in-flight buffers the pipeline needs,
//   (b) pipeline buffer size: startup cost vs DMA efficiency,
//   (c) expected chunk size: dedup ratio vs chunking/index cost trade-off.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/shredder.h"
#include "chunking/cdc.h"
#include "dedup/dedup.h"
#include "gpusim/timeline.h"

using namespace shredder;
using namespace shredder::core;

namespace {

void ring_depth_ablation() {
  bench::print_header("A1", "Ablation: pinned-ring depth (in-flight buffers)",
                      "throughput saturates once the bottleneck stage stays "
                      "busy; deeper rings only add pinned memory");
  ShredderConfig cfg;
  cfg.buffer_bytes = 32ull << 20;
  Shredder shredder(cfg);
  SyntheticSource source(256ull << 20, 3, cfg.host.reader_bw);
  const auto result = shredder.run(source);
  const auto& m = result.mean_stage_seconds;
  const std::vector<double> stages = {m.reader, m.transfer, m.kernel, m.store};
  TablePrinter t({"RingSlots", "Throughput", "PinnedMem"}, 14);
  for (std::size_t slots = 1; slots <= 6; ++slots) {
    const double makespan = gpu::pipeline_makespan(stages, 32, slots);
    const double bps = 32.0 * static_cast<double>(cfg.buffer_bytes) / makespan;
    t.add_row({std::to_string(slots),
               TablePrinter::fmt(bps / 1e9, 2) + " GB/s",
               human_bytes(slots * cfg.buffer_bytes)});
  }
  t.print();
}

void buffer_size_ablation() {
  bench::print_header("A2", "Ablation: pipeline buffer size",
                      "small buffers pay per-transfer overhead and launch "
                      "cost; large buffers pay pipeline fill on finite "
                      "streams");
  TablePrinter t({"BufferSize", "Throughput", "Kernel(ms)", "Transfer(ms)"},
                 14);
  for (const std::uint64_t buffer :
       {1ull << 20, 4ull << 20, 16ull << 20, 64ull << 20, 256ull << 20}) {
    ShredderConfig cfg;
    cfg.buffer_bytes = buffer;
    Shredder shredder(cfg);
    SyntheticSource source(std::max<std::uint64_t>(4 * buffer, 64ull << 20),
                           4, cfg.host.reader_bw);
    const auto r = shredder.run(source);
    t.add_row({bench::mb_label(buffer),
               TablePrinter::fmt(r.virtual_throughput_bps / 1e9, 2) + " GB/s",
               TablePrinter::fmt(r.mean_stage_seconds.kernel * 1e3, 2),
               TablePrinter::fmt(r.mean_stage_seconds.transfer * 1e3, 2)});
  }
  t.print();
}

void chunk_size_ablation() {
  bench::print_header("A3", "Ablation: expected chunk size vs dedup ratio",
                      "smaller chunks find more duplicates but multiply "
                      "index/metadata work — the trade-off behind the "
                      "paper's 4 KB default and SampleByte's weakness at "
                      "large chunks");
  const auto v1 = random_bytes(64ull << 20, 5);
  const auto v2 = mutate_bytes(as_bytes(v1), 0.05, 6);
  TablePrinter t({"MaskBits", "ExpectedSize", "DedupRatio", "Chunks",
                  "IndexCost(ms)"},
                 14);
  for (unsigned bits = 10; bits <= 16; bits += 2) {
    chunking::ChunkerConfig cc;
    cc.mask_bits = bits;
    const rabin::RabinTables tables(cc.window);
    dedup::Deduplicator dedup;
    dedup.ingest(as_bytes(v1), chunking::chunk_serial(tables, cc, as_bytes(v1)));
    const auto stats = dedup.ingest(
        as_bytes(v2), chunking::chunk_serial(tables, cc, as_bytes(v2)));
    t.add_row({std::to_string(bits), human_bytes(cc.expected_chunk_size()),
               TablePrinter::fmt(100 * stats.dedup_ratio(), 1) + "%",
               std::to_string(stats.chunks_total),
               TablePrinter::fmt(dedup.index().virtual_seconds() * 1e3, 1)});
  }
  t.print();
}

}  // namespace

int main() {
  ring_depth_ablation();
  std::printf("\n");
  buffer_size_ablation();
  std::printf("\n");
  chunk_size_ablation();
  return 0;
}
