// Figure 6 — allocation overhead: pageable vs pinned host memory, and the
// pageable->pinned memcpy that is the steady-state cost once the circular
// ring of pinned buffers (§4.1.2) is in place.
//
// Prints the calibrated model values next to a real measurement of the
// pageable path (malloc + bzero, the paper's methodology) on this host.
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util.h"
#include "common/stats.h"
#include "common/timer.h"
#include "gpusim/pinned.h"
#include "gpusim/spec.h"

int main() {
  using namespace shredder;
  using namespace shredder::gpu;
  bench::print_header(
      "F6", "Figure 6: pageable vs pinned allocation overhead",
      "pinned allocation ~10x pageable; ring-buffer reuse amortizes pinning "
      "to one-time setup, leaving only a pageable->pinned memcpy per buffer");

  const DeviceSpec spec;
  TablePrinter t({"BufferSize", "PageableAlloc(ms)", "MemcpyToPinned(ms)",
                  "PinnedAlloc(ms)", "HostMeasured(ms)"},
                 19);
  for (const auto size : bench::paper_buffer_sweep()) {
    // Real pageable allocation forced resident, as the paper measures.
    Stopwatch sw;
    {
      auto block = std::make_unique<std::uint8_t[]>(size);
      std::memset(block.get(), 0, size);
    }
    const double measured = sw.elapsed_seconds();
    t.add_row({bench::mb_label(size),
               TablePrinter::fmt(pageable_alloc_seconds(spec, size) * 1e3, 2),
               TablePrinter::fmt(
                   pageable_to_pinned_copy_seconds(spec, size) * 1e3, 2),
               TablePrinter::fmt(pinned_alloc_seconds(spec, size) * 1e3, 2),
               TablePrinter::fmt(measured * 1e3, 2)});
  }
  t.print();

  // Ring amortization: steady-state per-iteration cost after N iterations.
  const std::uint64_t buffer = 64ull << 20;
  PinnedRing ring(spec, 4, static_cast<std::size_t>(buffer));
  const double per_iter_with_ring =
      pageable_to_pinned_copy_seconds(spec, buffer);
  const double per_iter_naive = pinned_alloc_seconds(spec, buffer);
  std::printf("\nring of 4 x 64MB: one-time setup %.1f ms; per-iteration cost "
              "%.2f ms vs %.2f ms for per-iteration pinned allocation "
              "(%.1fx cheaper steady-state)\n",
              ring.construction_cost_seconds() * 1e3, per_iter_with_ring * 1e3,
              per_iter_naive * 1e3, per_iter_naive / per_iter_with_ring);
  return 0;
}
