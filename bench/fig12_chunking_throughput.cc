// Figure 12 — end-to-end content-based chunking throughput: the host-only
// pthreads implementation (with and without the Hoard-like arena allocator)
// against the GPU versions (Basic, Streams, Streams + Memory coalescing).
//
// Every configuration chunks the same 1 GiB stream and must produce
// identical chunks (asserted); throughputs are reported under the calibrated
// 2012 testbed model (X5650 host + C2050 GPU) alongside this machine's real
// wall-clock numbers for the CPU paths.
#include <cstdio>

#include "bench_util.h"
#include "common/check.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/shredder.h"

int main() {
  using namespace shredder;
  using namespace shredder::core;
  bench::print_header(
      "F12", "Figure 12: CPU vs GPU chunking throughput",
      "CPU+Hoard ~0.4 GB/s modestly above CPU-Hoard; GPU Basic ~2x CPU; "
      "GPU Streams in between; GPU Streams+Memory >5x CPU "
      "(reader-capped ~2 GB/s)");

  const std::uint64_t total = 1024ull << 20;
  const auto data = random_bytes(total, 2012);
  const ByteSpan span = as_bytes(data);
  chunking::ChunkerConfig chunker;  // 48-byte window, 13 bits, as in §3.1

  TablePrinter t({"Configuration", "Calibrated", "ThisHost", "Chunks"}, 22);
  std::vector<chunking::Chunk> reference;

  auto add_cpu = [&](bool hoard) {
    const auto r = chunk_on_host(span, chunker, gpu::HostSpec{}, hoard);
    if (reference.empty()) {
      reference = r.chunks;
    } else {
      SHREDDER_CHECK_MSG(r.chunks == reference, "CPU chunks diverged");
    }
    t.add_row({hoard ? "CPU w/ Hoard" : "CPU w/o Hoard",
               TablePrinter::fmt(r.virtual_throughput_bps / 1e9, 2) + " GB/s",
               TablePrinter::fmt(r.wall_throughput_bps / 1e9, 2) + " GB/s",
               std::to_string(r.chunks.size())});
  };
  add_cpu(false);
  add_cpu(true);

  auto add_gpu = [&](GpuMode mode, const char* label) {
    ShredderConfig cfg;
    cfg.chunker = chunker;
    cfg.buffer_bytes = 32ull << 20;
    cfg.mode = mode;
    Shredder shredder(cfg);
    const auto r = shredder.run(span);
    SHREDDER_CHECK_MSG(r.chunks == reference, "GPU chunks diverged");
    t.add_row({label,
               TablePrinter::fmt(r.virtual_throughput_bps / 1e9, 2) + " GB/s",
               TablePrinter::fmt(
                   static_cast<double>(total) / r.wall_seconds / 1e9, 2) +
                   " GB/s (sim)",
               std::to_string(r.chunks.size())});
    return r.virtual_throughput_bps;
  };
  add_gpu(GpuMode::kBasic, "GPU Basic");
  add_gpu(GpuMode::kStreams, "GPU Streams");
  const double full = add_gpu(GpuMode::kStreamsCoalesced, "GPU Streams+Memory");

  t.print();
  const auto host = chunk_on_host(span, chunker, gpu::HostSpec{}, true);
  std::printf("\nheadline: GPU Streams+Memory is %.1fx the optimized host-only "
              "implementation (paper: >5x)\n",
              full / host.virtual_throughput_bps);
  std::printf("(all five configurations produced bit-identical chunk "
              "boundaries)\n");
  return 0;
}
