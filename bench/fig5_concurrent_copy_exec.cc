// Figure 5 — normalized overlap of communication with computation
// (double buffering, §4.1.1), for 1 GB of data at varying buffer sizes.
//
// Runs the real basic (uncoalesced) chunking kernel per buffer size to get
// per-buffer transfer and kernel durations under the C2050 model, then
// schedules 1 GB worth of buffers twice: serialized (single stream) and
// concurrent (double-buffered, two streams) on the copy/compute engines.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/shredder.h"
#include "gpusim/timeline.h"

int main() {
  using namespace shredder;
  using namespace shredder::core;
  bench::print_header(
      "F5", "Figure 5: serialized vs concurrent copy and execution (1 GB)",
      "~25-30% of serialized time is transfer; concurrency hides it behind "
      "the kernel, cutting total time ~15% and leaving it compute-bound");

  TablePrinter t({"BufferSize", "Transfer(ms)", "Kernel(ms)", "Serial(ms)",
                  "Concur(ms)", "Saved"},
                 13);
  const std::uint64_t total = 1ull << 30;
  for (const auto buffer : bench::paper_buffer_sweep()) {
    ShredderConfig cfg;
    cfg.buffer_bytes = buffer;
    cfg.mode = GpuMode::kStreams;      // pinned + async copy path
    cfg.kernel.coalesced = false;      // pre-§4.3 kernel, as in the figure
    Shredder shredder(cfg);
    // Chunk a few representative buffers; per-buffer stage costs are what
    // the schedule needs.
    const std::uint64_t sample_bytes = std::min<std::uint64_t>(
        total, std::max<std::uint64_t>(3 * buffer, 128ull << 20));
    SyntheticSource source(sample_bytes, 42, cfg.host.reader_bw);
    const auto result = shredder.run(source);

    const double transfer = result.mean_stage_seconds.transfer;
    const double kernel = result.mean_stage_seconds.kernel;
    const auto n = static_cast<std::uint64_t>(total / buffer);

    gpu::GpuTimeline serial(1);
    for (std::uint64_t i = 0; i < n; ++i) {
      serial.enqueue(0, gpu::EngineKind::kCopyH2D, transfer);
      serial.enqueue(0, gpu::EngineKind::kCompute, kernel);
    }
    gpu::GpuTimeline concurrent(2);
    for (std::uint64_t i = 0; i < n; ++i) {
      concurrent.enqueue(i % 2, gpu::EngineKind::kCopyH2D, transfer);
      concurrent.enqueue(i % 2, gpu::EngineKind::kCompute, kernel);
    }
    const double s = serial.makespan();
    const double c = concurrent.makespan();
    t.add_row({bench::mb_label(buffer),
               TablePrinter::fmt(transfer * 1e3 * static_cast<double>(n), 1),
               TablePrinter::fmt(kernel * 1e3 * static_cast<double>(n), 1),
               TablePrinter::fmt(s * 1e3, 1), TablePrinter::fmt(c * 1e3, 1),
               TablePrinter::fmt(100.0 * (s - c) / s, 1) + "%"});
  }
  t.print();
  std::printf("(Transfer/Kernel columns are totals over the 1 GB stream; "
              "Saved = serialized vs concurrent)\n");
  return 0;
}
