// Primitive micro-benchmarks (google-benchmark): the building blocks whose
// costs the figure benches compose — Rabin window pushes, the canonical
// scanner, parallel chunking, min/max filtering, baseline chunkers, SHA
// hashing and the dedup index.
#include <benchmark/benchmark.h>

#include "chunking/cdc.h"
#include "chunking/fixed.h"
#include "chunking/minmax.h"
#include "chunking/parallel.h"
#include "chunking/samplebyte.h"
#include "common/rng.h"
#include "dedup/index.h"
#include "dedup/sha1.h"
#include "dedup/sha256.h"

namespace {

using namespace shredder;

const ByteVec& payload() {
  static const ByteVec data = random_bytes(8ull << 20, 77);
  return data;
}

chunking::ChunkerConfig default_config() {
  chunking::ChunkerConfig c;
  c.window = 48;
  c.mask_bits = 13;
  c.marker = 0x78;
  return c;
}

void BM_RabinWindowPush(benchmark::State& state) {
  const rabin::RabinTables tables(48);
  rabin::RabinWindow window(tables);
  const auto& data = payload();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(window.push(data[i]));
    i = (i + 1) & ((1 << 20) - 1);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RabinWindowPush);

void BM_SerialScan(benchmark::State& state) {
  const auto config = default_config();
  const rabin::RabinTables tables(config.window);
  const ByteSpan data = as_bytes(payload());
  for (auto _ : state) {
    std::uint64_t count = 0;
    chunking::scan_raw(tables, config, data, 0, 0,
                       [&](std::uint64_t, std::uint64_t) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_SerialScan);

void BM_ParallelChunker(benchmark::State& state) {
  const auto config = default_config();
  const rabin::RabinTables tables(config.window);
  chunking::ParallelChunker chunker(
      tables, config, static_cast<std::size_t>(state.range(0)));
  const ByteSpan data = as_bytes(payload());
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.chunk(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ParallelChunker)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_SampleByte(benchmark::State& state) {
  const chunking::SampleByteChunker chunker(8192, 16, 3);
  const ByteSpan data = as_bytes(payload());
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.boundaries(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_SampleByte);

void BM_FixedChunking(benchmark::State& state) {
  const ByteSpan data = as_bytes(payload());
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunking::chunk_fixed(data, 8192));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_FixedChunking);

void BM_MinMaxFilter(benchmark::State& state) {
  // Typical raw boundary stream: ~8 KB spacing over 64 MB.
  std::vector<std::uint64_t> raw;
  SplitMix64 rng(5);
  std::uint64_t pos = 0;
  while (pos < (64ull << 20)) {
    pos += 1 + rng.next_below(16384);
    raw.push_back(pos);
  }
  const std::uint64_t total = pos + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chunking::apply_min_max(raw, total, 2048, 16384));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(raw.size()));
}
BENCHMARK(BM_MinMaxFilter);

void BM_Sha1(benchmark::State& state) {
  const ByteSpan data = as_bytes(payload()).first(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedup::Sha1::hash(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_Sha256(benchmark::State& state) {
  const ByteSpan data = as_bytes(payload()).first(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedup::Sha256::hash(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(65536);

void BM_ChunkIndexLookup(benchmark::State& state) {
  dedup::ChunkIndex index(0.0);
  std::vector<dedup::Sha1Digest> digests;
  for (int i = 0; i < 10000; ++i) {
    const auto d = dedup::Sha1::hash(
        ByteSpan{reinterpret_cast<const std::uint8_t*>(&i), sizeof(i)});
    digests.push_back(d);
    index.lookup_or_insert(d, {static_cast<std::uint64_t>(i), 4096});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.lookup(digests[i % digests.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChunkIndexLookup);

}  // namespace

BENCHMARK_MAIN();
