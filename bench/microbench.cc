// Primitive micro-benchmarks (google-benchmark): the building blocks whose
// costs the figure benches compose — Rabin window pushes, the canonical
// scanner, the batched buffer fast path, parallel chunking, min/max
// filtering, baseline chunkers, SHA hashing and the dedup index.
//
// Chunking perf tracking: `microbench --chunking_json[=PATH]` skips the
// google-benchmark suite and instead measures raw-boundary scan throughput
// (seed StreamScanner vs scan_buffer fast path, serial and parallel) on a
// 64 MiB input, writing machine-readable results to PATH (default
// BENCH_chunking.json). Run it before and after any hot-path change; see
// docs/perf.md.
//
// Multi-tenant service tracking: `microbench --service_json[=PATH]` measures
// aggregate virtual throughput of the ChunkingService at N = 1, 4, 16
// concurrent tenant streams against the dedicated single-stream Shredder
// baseline, writing BENCH_service.json. The acceptance bar is N=16 >= 2x the
// baseline (the device no longer idles between one stream's buffers).
// `--service_smoke_json[=PATH]` is the small-N variant scripts/ci.sh runs.
//
// Zero-copy sink tracking: `microbench --sink_zero_copy_json[=PATH]` runs a
// payload-consuming sink at the 2 KB small-chunk operating point over the
// in-memory ByteSpan path and the streaming DataSource path (refcounted slot
// leases end to end, docs/zero_copy.md) and writes both wall throughputs to
// BENCH_sink.json. The acceptance bar is streaming >= 0.95x in-memory — the
// lease plumbing must make streaming retention copy-free, not merely
// correct. `--sink_zero_copy_smoke_json[=PATH]` is the small-input variant
// scripts/ci.sh runs (bar 0.9x).
//
// Fingerprint-stage tracking: `microbench --fingerprint_json[=PATH]` backs a
// VM snapshot up twice — once hashing chunks on the host store thread, once
// with the on-device SHA-256 fingerprint stage — and writes end-to-end
// backup throughput for both plus the fingerprint pipeline's stage/overlap
// breakdown to BENCH_fingerprint.json. The acceptance bar is device-hash
// >= 1.3x host-hash end-to-end. `--fingerprint_smoke_json[=PATH]` is the
// small-image variant scripts/ci.sh runs.
//
// Fingerprint-index tracking: `microbench --index_json[=PATH]` replays the
// digest stream of a 4 KB-chunked snapshot pair (base + low-similarity
// successor) through both index backends and writes the modelled probe-path
// seconds, flash/cache counters and the sparse-over-baseline speedup to
// BENCH_index.json. The acceptance bar is sparse >= 3x baseline at the
// low-similarity operating point (docs/dedup_index.md).
// `--index_smoke_json[=PATH]` is the small-image variant scripts/ci.sh runs.
//
// Backup-wire tracking: `microbench --agent_json[=PATH]` backs a duplicate-
// heavy 2 KB-chunked snapshot up twice — per-chunk link framing vs the
// extent-coalesced batch protocol (docs/backup_wire.md) — and writes both
// link-stage seconds, message/extent/wire-byte counts and end-to-end
// bandwidths to BENCH_agent.json. The acceptance bar is batch framing
// >= 1.5x faster on the link stage at that small-chunk operating point.
// `--agent_smoke_json[=PATH]` is the small-image variant scripts/ci.sh runs.
//
// Transport loss-sweep tracking: `microbench --transport_json[=PATH]` ships
// the same duplicate-heavy snapshot over the windowed ack-clocked transport
// (docs/backup_wire.md) under frame-loss rates {0, 1, 5, 10, 20}% plus mild
// reordering/duplication, writing per-point goodput, retransmit/repair and
// stall counters to BENCH_transport.json. The acceptance bar is goodput at
// 1% loss >= 0.7x the lossless run — recovery must stay ack-clocked, not
// timeout-bound. `--transport_smoke_json[=PATH]` is the small-image variant
// scripts/ci.sh runs.
//
// Observability tracking: `microbench --obs_json[=PATH]` exercises the obs
// layer end to end (docs/observability.md) — measures the wall-time overhead
// of a pipeline with a disabled metrics registry attached (bar: <= 2%), runs
// a 16-tenant service and a 1%-loss backup transport with metrics + tracing
// on, exports both as Perfetto-loadable Chrome trace JSON
// (TRACE_obs_service.json, TRACE_obs_transport.json), and cross-checks the
// traced per-engine busy time against GpuTimeline::engine_busy (bar: within
// 1%). Writes BENCH_obs.json. `--obs_smoke_json[=PATH]` is the small variant
// scripts/ci.sh runs.
//
// Retention churn tracking: `microbench --retention_json[=PATH]` backs up N
// high-churn snapshots through a BackupServer, deletes half of them on both
// the server and the backup-site agent, runs the epoch GC sweep and the
// entry-log compaction (docs/retention.md), and writes store/index occupancy
// before and after plus the modelled retention seconds to
// BENCH_retention.json. The acceptance bars: >= 80% of the dead bytes the
// deletes zeroed are reclaimed by GC, store bytes and index entry-log size
// both shrink >= 40%, surviving images recreate bit-identically, and every
// surviving digest's sparse-index probe decision is bit-identical before and
// after compaction (dead unshared digests must miss). `--retention_smoke_
// json[=PATH]` is the small-image variant scripts/ci.sh runs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "backup/backup_server.h"
#include "chunking/cdc.h"
#include "chunking/fixed.h"
#include "chunking/minmax.h"
#include "chunking/parallel.h"
#include "chunking/samplebyte.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/shredder.h"
#include "dedup/index.h"
#include "dedup/sha1.h"
#include "dedup/sha256.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "service/service.h"

namespace {

using namespace shredder;

const ByteVec& payload() {
  static const ByteVec data = random_bytes(8ull << 20, 77);
  return data;
}

chunking::ChunkerConfig default_config() {
  chunking::ChunkerConfig c;
  c.window = 48;
  c.mask_bits = 13;
  c.marker = 0x78;
  return c;
}

void BM_RabinWindowPush(benchmark::State& state) {
  const rabin::RabinTables tables(48);
  rabin::RabinWindow window(tables);
  const auto& data = payload();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(window.push(data[i]));
    i = (i + 1) & ((1 << 20) - 1);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RabinWindowPush);

void BM_SerialScan(benchmark::State& state) {
  const auto config = default_config();
  const rabin::RabinTables tables(config.window);
  const ByteSpan data = as_bytes(payload());
  for (auto _ : state) {
    std::uint64_t count = 0;
    chunking::scan_raw(tables, config, data, 0, 0,
                       [&](std::uint64_t, std::uint64_t) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_SerialScan);

void BM_BufferScan(benchmark::State& state) {
  const auto config = default_config();
  const rabin::RabinTables tables(config.window);
  const ByteSpan data = as_bytes(payload());
  for (auto _ : state) {
    std::uint64_t count = 0;
    chunking::scan_buffer(tables, config, data, 0, 0,
                          [&](std::uint64_t, std::uint64_t) { ++count; });
    benchmark::DoNotOptimize(count);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_BufferScan);

void BM_ParallelChunker(benchmark::State& state) {
  const auto config = default_config();
  const rabin::RabinTables tables(config.window);
  chunking::ParallelChunker chunker(
      tables, config, static_cast<std::size_t>(state.range(0)));
  const ByteSpan data = as_bytes(payload());
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.chunk(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_ParallelChunker)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(12);

void BM_SampleByte(benchmark::State& state) {
  const chunking::SampleByteChunker chunker(8192, 16, 3);
  const ByteSpan data = as_bytes(payload());
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.boundaries(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_SampleByte);

void BM_FixedChunking(benchmark::State& state) {
  const ByteSpan data = as_bytes(payload());
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunking::chunk_fixed(data, 8192));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(data.size()));
}
BENCHMARK(BM_FixedChunking);

void BM_MinMaxFilter(benchmark::State& state) {
  // Typical raw boundary stream: ~8 KB spacing over 64 MB.
  std::vector<std::uint64_t> raw;
  SplitMix64 rng(5);
  std::uint64_t pos = 0;
  while (pos < (64ull << 20)) {
    pos += 1 + rng.next_below(16384);
    raw.push_back(pos);
  }
  const std::uint64_t total = pos + 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        chunking::apply_min_max(raw, total, 2048, 16384));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(raw.size()));
}
BENCHMARK(BM_MinMaxFilter);

void BM_Sha1(benchmark::State& state) {
  const ByteSpan data = as_bytes(payload()).first(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedup::Sha1::hash(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_Sha256(benchmark::State& state) {
  const ByteSpan data = as_bytes(payload()).first(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dedup::Sha256::hash(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(65536);

void BM_ChunkIndexLookup(benchmark::State& state) {
  dedup::ChunkIndex index(0.0);
  std::vector<dedup::ChunkDigest> digests;
  for (int i = 0; i < 10000; ++i) {
    const auto d = dedup::ChunkHasher::hash(
        ByteSpan{reinterpret_cast<const std::uint8_t*>(&i), sizeof(i)});
    digests.push_back(d);
    index.lookup_or_insert(d, {static_cast<std::uint64_t>(i), 4096});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.lookup(digests[i % digests.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ChunkIndexLookup);

// --- --chunking_json mode -------------------------------------------------

struct ScanResult {
  std::string name;
  double seconds = 0;
  double bytes_per_sec = 0;
  std::uint64_t boundaries = 0;
};

// Best-of-N wall time for one scan strategy (best-of reduces scheduler noise
// on shared machines; both paths are measured identically).
template <typename Fn>
ScanResult measure_scan(const std::string& name, std::uint64_t bytes, Fn&& fn,
                        int reps = 3) {
  ScanResult r;
  r.name = name;
  r.seconds = 1e300;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    const std::uint64_t count = fn();
    const double s = watch.elapsed_seconds();
    if (s < r.seconds) {
      r.seconds = s;
      r.boundaries = count;
    }
  }
  r.bytes_per_sec = static_cast<double>(bytes) / r.seconds;
  return r;
}

int run_chunking_json(const std::string& path) {
  const std::uint64_t kBytes = 64ull << 20;  // acceptance floor: >= 64 MiB
  const auto config = default_config();
  const rabin::RabinTables tables(config.window);
  const ByteVec input = random_bytes(kBytes, 4242);
  const ByteSpan data = as_bytes(input);

  std::vector<ScanResult> results;
  results.push_back(measure_scan("stream_scan_serial", kBytes, [&] {
    std::uint64_t count = 0;
    chunking::scan_raw(tables, config, data, 0, 0,
                       [&](std::uint64_t, std::uint64_t) { ++count; });
    return count;
  }));
  results.push_back(measure_scan("buffer_scan_serial", kBytes, [&] {
    std::uint64_t count = 0;
    chunking::scan_buffer(tables, config, data, 0, 0,
                          [&](std::uint64_t, std::uint64_t) { ++count; });
    return count;
  }));
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    chunking::ParallelChunker chunker(tables, config, threads,
                                      chunking::AllocMode::kThreadArena);
    results.push_back(measure_scan(
        "buffer_scan_parallel_t" + std::to_string(threads), kBytes,
        [&] { return chunker.raw_boundaries(data).size(); }));
  }

  const double stream = results[0].bytes_per_sec;
  const double buffer = results[1].bytes_per_sec;
  const double speedup = buffer / stream;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"input_bytes\": %llu,\n",
               static_cast<unsigned long long>(kBytes));
  std::fprintf(f, "  \"window\": %zu,\n", config.window);
  std::fprintf(f, "  \"mask_bits\": %u,\n", config.mask_bits);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"seconds\": %.6f, "
                 "\"bytes_per_sec\": %.0f, \"boundaries\": %llu}%s\n",
                 r.name.c_str(), r.seconds, r.bytes_per_sec,
                 static_cast<unsigned long long>(r.boundaries),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_buffer_over_stream\": %.3f\n", speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);

  for (const auto& r : results) {
    std::printf("%-26s %8.1f MB/s  (%llu boundaries)\n", r.name.c_str(),
                r.bytes_per_sec / 1e6,
                static_cast<unsigned long long>(r.boundaries));
  }
  std::printf("speedup buffer/stream: %.2fx  -> %s\n", speedup, path.c_str());
  return 0;
}

// --- --service_json mode --------------------------------------------------

struct ServicePoint {
  std::size_t n_streams = 0;
  double aggregate_bps = 0;
  double speedup_vs_baseline = 0;
  double device_occupancy = 0;
  double h2d_busy_fraction = 0;
};

int run_service_json(const std::string& path, bool smoke) {
  const std::size_t per_tenant = smoke ? (1u << 20) : (8u << 20);
  const std::vector<std::size_t> fleet =
      smoke ? std::vector<std::size_t>{1, 4}
            : std::vector<std::size_t>{1, 4, 16};
  const std::size_t max_n = fleet.back();

  service::ServiceConfig cfg;  // paper chunker: w=48, 13 bits, 0x78
  cfg.buffer_bytes = 1u << 20;
  cfg.max_tenants = max_n;

  // Distinct payload per tenant so streams do not trivially share content.
  std::vector<ByteVec> payloads;
  for (std::size_t k = 0; k < max_n; ++k) {
    payloads.push_back(random_bytes(per_tenant, 9000 + k));
  }

  // Single-stream baseline: a dedicated Shredder pipeline over tenant 0.
  core::ShredderConfig base_cfg;
  base_cfg.chunker = cfg.chunker;
  base_cfg.buffer_bytes = cfg.buffer_bytes;
  base_cfg.mode = cfg.mode;
  base_cfg.kernel = cfg.kernel;
  base_cfg.ring_slots = cfg.ring_slots;
  core::Shredder baseline_shredder(base_cfg);
  const double baseline_bps =
      baseline_shredder.run(as_bytes(payloads[0])).virtual_throughput_bps;

  std::vector<ServicePoint> points;
  for (const std::size_t n : fleet) {
    service::ChunkingService svc(cfg);
    std::vector<service::ChunkingService::StreamId> ids;
    for (std::size_t k = 0; k < n; ++k) ids.push_back(svc.open());
    std::vector<std::thread> producers;
    for (std::size_t k = 0; k < n; ++k) {
      producers.emplace_back([&, k] {
        svc.submit(ids[k], as_bytes(payloads[k]));
        svc.finish(ids[k]);
      });
    }
    for (auto& t : producers) t.join();
    for (const auto id : ids) svc.wait(id);
    const auto report = svc.shutdown();
    ServicePoint p;
    p.n_streams = n;
    p.aggregate_bps = report.aggregate_throughput_bps;
    p.speedup_vs_baseline = p.aggregate_bps / baseline_bps;
    p.device_occupancy = report.device_occupancy;
    p.h2d_busy_fraction = report.virtual_seconds > 0
                              ? report.h2d_busy_seconds / report.virtual_seconds
                              : 0.0;
    points.push_back(p);
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"per_tenant_bytes\": %llu,\n",
               static_cast<unsigned long long>(per_tenant));
  std::fprintf(f, "  \"buffer_bytes\": %llu,\n",
               static_cast<unsigned long long>(cfg.buffer_bytes));
  std::fprintf(f, "  \"single_stream_baseline_bps\": %.0f,\n", baseline_bps);
  std::fprintf(f, "  \"results\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(f,
                 "    {\"n_streams\": %zu, \"aggregate_bps\": %.0f, "
                 "\"speedup_vs_baseline\": %.3f, \"device_occupancy\": %.3f, "
                 "\"h2d_busy_fraction\": %.3f}%s\n",
                 p.n_streams, p.aggregate_bps, p.speedup_vs_baseline,
                 p.device_occupancy, p.h2d_busy_fraction,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("single-stream baseline: %8.1f MB/s\n", baseline_bps / 1e6);
  for (const auto& p : points) {
    std::printf("N=%-3zu aggregate %8.1f MB/s  (%.2fx baseline, "
                "compute occupancy %.0f%%, h2d busy %.0f%%)\n",
                p.n_streams, p.aggregate_bps / 1e6, p.speedup_vs_baseline,
                p.device_occupancy * 100, p.h2d_busy_fraction * 100);
  }
  std::printf("-> %s\n", path.c_str());
  return 0;
}

// --- --sink_zero_copy_json mode -------------------------------------------

// Payload-consuming sink for the zero-copy bench: touches every chunk's
// bytes (head + tail, the shape of a header-sniffing consumer) so the
// payload path is really exercised, and folds them into a checksum used to
// cross-check the streaming and in-memory runs deliver identical bytes.
class PayloadProbeSink final : public ChunkSink {
 public:
  void on_batch(const ChunkBatchView& batch) override {
    for (std::size_t i = 0; i < batch.chunks.size(); ++i) {
      const ByteSpan bytes = batch.chunk_bytes(i);
      std::uint64_t h = 1469598103934665603ull ^ bytes.size();
      const std::size_t probe = std::min<std::size_t>(32, bytes.size());
      for (std::size_t k = 0; k < probe; ++k) {
        h = (h ^ bytes[k]) * 1099511628211ull;
        h = (h ^ bytes[bytes.size() - 1 - k]) * 1099511628211ull;
      }
      checksum_ ^= h;
    }
  }
  bool wants_payload() const noexcept override { return true; }
  std::uint64_t checksum() const noexcept { return checksum_; }

 private:
  std::uint64_t checksum_ = 0;
};

int run_sink_zero_copy_json(const std::string& path, bool smoke) {
  // The 2 KB small-chunk operating point (the backup wire's regression
  // point): payload-per-chunk is small, so per-stage copies used to dominate
  // the streaming path. With refcounted slot leases the streaming (DataSource)
  // run must hold the in-memory ByteSpan run's wall throughput.
  const std::size_t input_bytes = smoke ? (8u << 20) : (32u << 20);
  const double bar = smoke ? 0.90 : 0.95;
  const ByteVec data = random_bytes(input_bytes, 4242);

  core::ShredderConfig cfg;
  cfg.chunker.window = 32;
  cfg.chunker.mask_bits = 11;
  cfg.chunker.marker = 0x42;
  cfg.chunker.min_size = 512;
  cfg.chunker.max_size = 8 * 1024;
  cfg.buffer_bytes = 512u << 10;

  std::vector<chunking::Chunk> span_chunks, stream_chunks;
  std::uint64_t span_sum = 0, stream_sum = 0;
  double best_span = 1e300, best_stream = 1e300;
  // Best-of-N wall time, paths alternating; rep 0 warms allocators/caches
  // for both and is the run whose streams are cross-checked.
  const int reps = smoke ? 3 : 4;
  for (int r = 0; r < reps; ++r) {
    {
      core::Shredder shredder(cfg);
      PayloadProbeSink sink;
      Stopwatch w;
      const auto res = shredder.run(as_bytes(data), sink);
      best_span = std::min(best_span, w.elapsed_seconds());
      if (r == 0) {
        span_chunks = res.chunks;
        span_sum = sink.checksum();
      }
    }
    {
      core::Shredder shredder(cfg);
      core::MemorySource source(as_bytes(data),
                                shredder.config().host.reader_bw);
      PayloadProbeSink sink;
      Stopwatch w;
      const auto res = shredder.run(source, sink);
      best_stream = std::min(best_stream, w.elapsed_seconds());
      if (r == 0) {
        stream_chunks = res.chunks;
        stream_sum = sink.checksum();
      }
    }
  }
  const bool identical = span_chunks == stream_chunks && span_sum == stream_sum;
  const double span_bps = static_cast<double>(input_bytes) / best_span;
  const double stream_bps = static_cast<double>(input_bytes) / best_stream;
  const double ratio = stream_bps / span_bps;
  const bool pass = identical && ratio >= bar;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"input_bytes\": %llu,\n",
               static_cast<unsigned long long>(input_bytes));
  std::fprintf(f, "  \"buffer_bytes\": %llu,\n",
               static_cast<unsigned long long>(cfg.buffer_bytes));
  std::fprintf(f, "  \"chunks\": %zu,\n", span_chunks.size());
  std::fprintf(f, "  \"streams_identical\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"bar\": %.2f,\n", bar);
  std::fprintf(f, "  \"results\": [\n");
  std::fprintf(f,
               "    {\"path\": \"bytespan\", \"wall_seconds\": %.6f, "
               "\"wall_bps\": %.0f},\n",
               best_span, span_bps);
  std::fprintf(f,
               "    {\"path\": \"streaming\", \"wall_seconds\": %.6f, "
               "\"wall_bps\": %.0f, \"ratio_vs_bytespan\": %.3f}\n",
               best_stream, stream_bps, ratio);
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("in-memory ByteSpan path: %8.1f MB/s wall\n", span_bps / 1e6);
  std::printf("streaming (DataSource):  %8.1f MB/s wall  (%.3fx, bar %.2fx, "
              "streams %s)\n",
              stream_bps / 1e6, ratio, bar,
              identical ? "identical" : "DIVERGED");
  std::printf("-> %s\n", path.c_str());
  if (!pass) {
    std::fprintf(stderr, "sink_zero_copy: FAILED (%s)\n",
                 identical ? "ratio below bar" : "stream mismatch");
    return 1;
  }
  return 0;
}

// --- --fingerprint_json mode ------------------------------------------------

int run_fingerprint_json(const std::string& path, bool smoke) {
  using namespace shredder::backup;
  ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = smoke ? (8ull << 20) : (64ull << 20);
  repo_cfg.segment_bytes = 1ull << 20;
  repo_cfg.seed = 1234;
  ImageRepository repo(repo_cfg);

  // Paper-scale backup chunker, tuned so the index stage stays off the
  // critical path (~8 KB chunks): the host-hash run is hash-bound, the
  // device-hash run is generation-bound.
  auto server_config = [&](bool device_hash) {
    BackupServerConfig cfg;
    cfg.backend = ChunkerBackend::kShredderGpu;
    cfg.chunker.window = 48;
    cfg.chunker.mask_bits = 13;
    cfg.chunker.marker = 0x78;
    cfg.chunker.min_size = 4 * 1024;
    cfg.chunker.max_size = 32 * 1024;
    cfg.shredder.buffer_bytes = smoke ? (1ull << 20) : (8ull << 20);
    cfg.fingerprint_on_device = device_hash;
    return cfg;
  };

  const auto base = repo.snapshot(0.0, 1);
  const auto snap = repo.snapshot(0.10, 2);

  BackupRunStats host_stats, device_stats;
  for (const bool device_hash : {false, true}) {
    BackupServer server(server_config(device_hash));
    BackupAgent agent;
    server.backup_image("base", as_bytes(base), repo, agent);
    const auto stats = server.backup_image("snap", as_bytes(snap), repo, agent);
    if (!stats.verified) {
      std::fprintf(stderr, "fingerprint bench: backup verification failed\n");
      return 1;
    }
    (device_hash ? device_stats : host_stats) = stats;
  }
  const double speedup = host_stats.backup_bandwidth_gbps > 0
                             ? device_stats.backup_bandwidth_gbps /
                                   host_stats.backup_bandwidth_gbps
                             : 0.0;

  // Pipeline overlap evidence: a fingerprinting Shredder run over the same
  // snapshot; the hash kernel of buffer i overlaps the H2D of buffer i+1,
  // so the makespan stays well under the serialized stage sum.
  core::ShredderConfig pipe_cfg = server_config(true).shredder;
  pipe_cfg.chunker = server_config(true).chunker;
  pipe_cfg.fingerprint_on_device = true;
  core::Shredder shredder(pipe_cfg);
  const auto pipe = shredder.run(as_bytes(snap));
  const auto& m = pipe.mean_stage_seconds;
  const double overlap =
      pipe.virtual_seconds > 0 ? pipe.serialized_seconds / pipe.virtual_seconds
                               : 0.0;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"image_bytes\": %llu,\n",
               static_cast<unsigned long long>(repo_cfg.image_bytes));
  std::fprintf(f, "  \"change_probability\": 0.10,\n");
  std::fprintf(f, "  \"host_hash_gbps\": %.3f,\n",
               host_stats.backup_bandwidth_gbps);
  std::fprintf(f, "  \"device_hash_gbps\": %.3f,\n",
               device_stats.backup_bandwidth_gbps);
  std::fprintf(f, "  \"speedup_device_over_host\": %.3f,\n", speedup);
  std::fprintf(f, "  \"host_hashing_seconds\": %.6f,\n",
               host_stats.hashing_seconds);
  std::fprintf(f, "  \"device_hashing_seconds\": %.6f,\n",
               device_stats.hashing_seconds);
  std::fprintf(f,
               "  \"pipeline\": {\"reader_s\": %.6f, \"transfer_s\": %.6f, "
               "\"kernel_s\": %.6f, \"fingerprint_s\": %.6f, "
               "\"store_s\": %.6f,\n",
               m.reader, m.transfer, m.kernel, m.fingerprint, m.store);
  std::fprintf(f,
               "    \"virtual_seconds\": %.6f, \"serialized_seconds\": %.6f, "
               "\"overlap_factor\": %.3f}\n",
               pipe.virtual_seconds, pipe.serialized_seconds, overlap);
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("host-hash backup:   %6.2f Gbps (hash stage %.1f ms)\n",
              host_stats.backup_bandwidth_gbps,
              host_stats.hashing_seconds * 1e3);
  std::printf("device-hash backup: %6.2f Gbps (hash folded into pipeline)\n",
              device_stats.backup_bandwidth_gbps);
  std::printf("speedup: %.2fx | pipeline overlap %.2fx "
              "(fingerprint %.1f ms/buffer overlaps next H2D %.1f ms)\n",
              speedup, overlap, m.fingerprint * 1e3, m.transfer * 1e3);
  std::printf("-> %s\n", path.c_str());
  return 0;
}

// --- --index_json mode ------------------------------------------------------

// One backend's replay of (base insert stream, snapshot probe stream).
struct IndexRun {
  double snapshot_seconds = 0;  // modelled index time of the snapshot pass
  double total_seconds = 0;
  std::uint64_t duplicates = 0;  // snapshot probes answered from the index
  dedup::IndexStats stats;
};

int run_index_json(const std::string& path, bool smoke) {
  using namespace shredder::backup;
  ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = smoke ? (8ull << 20) : (64ull << 20);
  // Enough similarity segments that a 0.75 change probability reliably
  // leaves some unchanged (duplicate) runs even at smoke scale.
  repo_cfg.segment_bytes = smoke ? (256ull << 10) : (1ull << 20);
  repo_cfg.seed = 77;
  ImageRepository repo(repo_cfg);
  // The fig18 operating point that puts the baseline index on the critical
  // path: 4 KB chunks (fixed-size here — the bench isolates the index, not
  // the chunker).
  const std::size_t kChunk = 4096;

  const auto digests_of = [&](const ByteVec& image) {
    std::vector<dedup::ChunkDigest> out;
    const ByteSpan data = as_bytes(image);
    for (std::size_t off = 0; off < data.size(); off += kChunk) {
      out.push_back(dedup::ChunkHasher::hash(
          data.subspan(off, std::min(kChunk, data.size() - off))));
    }
    return out;
  };
  const auto base = digests_of(repo.snapshot(0.0, 1));
  // Low similarity: three quarters of the segments changed since the base.
  const auto snap_low = digests_of(repo.snapshot(0.75, 2));
  const auto snap_high = digests_of(repo.snapshot(0.10, 3));

  const auto replay = [&](dedup::IndexKind kind,
                          const std::vector<dedup::ChunkDigest>& snap) {
    dedup::IndexConfig cfg;
    cfg.kind = kind;
    // Baseline probe path at the backup server's §7.3 calibration — the
    // operating point whose erosion the sparse index removes.
    const BackupCostModel backup_costs;
    cfg.costs.probe_s = backup_costs.index_probe_s;
    cfg.costs.insert_s = backup_costs.index_insert_s;
    auto index = dedup::make_index(cfg);
    std::uint64_t off = 0;
    for (const auto& d : base) {
      index->lookup_or_insert(d, {off, kChunk}, /*stream=*/0);
      off += kChunk;
    }
    const double before = index->virtual_seconds();
    IndexRun run;
    for (const auto& d : snap) {
      if (index->lookup_or_insert(d, {off, kChunk}, /*stream=*/1)
              .has_value()) {
        ++run.duplicates;
      }
      off += kChunk;
    }
    run.stats = index->stats();
    run.total_seconds = run.stats.virtual_seconds;
    run.snapshot_seconds = run.total_seconds - before;
    return run;
  };

  const auto base_low = replay(dedup::IndexKind::kPaperBaseline, snap_low);
  const auto sparse_low = replay(dedup::IndexKind::kSparse, snap_low);
  const auto base_high = replay(dedup::IndexKind::kPaperBaseline, snap_high);
  const auto sparse_high = replay(dedup::IndexKind::kSparse, snap_high);
  const double speedup_low =
      base_low.snapshot_seconds / sparse_low.snapshot_seconds;
  const double speedup_high =
      base_high.snapshot_seconds / sparse_high.snapshot_seconds;
  const double n_probes = static_cast<double>(snap_low.size());
  if (base_low.duplicates != sparse_low.duplicates ||
      base_high.duplicates != sparse_high.duplicates ||
      base_low.duplicates == 0) {
    std::fprintf(stderr,
                 "index bench: backend dedup decisions diverged or the "
                 "workload has no duplicates\n");
    return 1;
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"image_bytes\": %llu,\n",
               static_cast<unsigned long long>(repo_cfg.image_bytes));
  std::fprintf(f, "  \"chunk_bytes\": %zu,\n", kChunk);
  std::fprintf(f, "  \"snapshot_probes\": %zu,\n", snap_low.size());
  std::fprintf(f,
               "  \"low_similarity\": {\"change_probability\": 0.75,\n"
               "    \"duplicate_probes\": %llu,\n"
               "    \"baseline_seconds\": %.6f, \"sparse_seconds\": %.6f,\n"
               "    \"baseline_us_per_probe\": %.3f, "
               "\"sparse_us_per_probe\": %.3f,\n"
               "    \"sparse_flash_reads\": %llu, "
               "\"sparse_cache_hits\": %llu,\n"
               "    \"speedup_sparse_over_baseline\": %.3f},\n",
               static_cast<unsigned long long>(sparse_low.duplicates),
               base_low.snapshot_seconds, sparse_low.snapshot_seconds,
               base_low.snapshot_seconds / n_probes * 1e6,
               sparse_low.snapshot_seconds / n_probes * 1e6,
               static_cast<unsigned long long>(sparse_low.stats.flash_reads),
               static_cast<unsigned long long>(sparse_low.stats.cache_hits),
               speedup_low);
  std::fprintf(f,
               "  \"high_similarity\": {\"change_probability\": 0.10,\n"
               "    \"duplicate_probes\": %llu,\n"
               "    \"baseline_seconds\": %.6f, \"sparse_seconds\": %.6f,\n"
               "    \"speedup_sparse_over_baseline\": %.3f}\n",
               static_cast<unsigned long long>(sparse_high.duplicates),
               base_high.snapshot_seconds, sparse_high.snapshot_seconds,
               speedup_high);
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("index probe path, %zu probes of a %s image at 4 KB chunks:\n",
              snap_low.size(), smoke ? "8 MiB" : "64 MiB");
  std::printf(
      "  low similarity (p=0.75): baseline %7.2f ms   sparse %7.2f ms "
      " -> %.1fx (%llu flash reads, %llu cache hits)\n",
      base_low.snapshot_seconds * 1e3, sparse_low.snapshot_seconds * 1e3,
      speedup_low,
      static_cast<unsigned long long>(sparse_low.stats.flash_reads),
      static_cast<unsigned long long>(sparse_low.stats.cache_hits));
  std::printf(
      "  high similarity (p=0.10): baseline %7.2f ms   sparse %7.2f ms "
      " -> %.1fx\n",
      base_high.snapshot_seconds * 1e3, sparse_high.snapshot_seconds * 1e3,
      speedup_high);
  std::printf("-> %s\n", path.c_str());
  if (speedup_low < 3.0) {
    std::fprintf(stderr,
                 "index bench: sparse speedup %.2fx below the 3x bar at the "
                 "low-similarity operating point\n",
                 speedup_low);
    return 1;
  }
  return 0;
}

// --- --agent_json mode ------------------------------------------------------

int run_agent_json(const std::string& path, bool smoke) {
  using namespace shredder::backup;
  ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = smoke ? (8ull << 20) : (64ull << 20);
  repo_cfg.segment_bytes = smoke ? (256ull << 10) : (1ull << 20);
  repo_cfg.seed = 4711;
  ImageRepository repo(repo_cfg);

  // The fig18-style small-chunk operating point the wire protocol targets:
  // ~2 KB expected chunks, on-device hashing and the sparse index so the
  // hash and probe stages are already off the critical path — what remains
  // of index+transfer is the link framing itself.
  auto server_config = [&](bool batch_link) {
    BackupServerConfig cfg;
    cfg.backend = ChunkerBackend::kShredderGpu;
    cfg.chunker.window = 48;
    cfg.chunker.mask_bits = 11;  // ~2 KB chunks
    cfg.chunker.marker = 0x78;
    cfg.chunker.min_size = 1024;
    cfg.chunker.max_size = 8 * 1024;
    cfg.shredder.buffer_bytes = smoke ? (1ull << 20) : (8ull << 20);
    cfg.fingerprint_on_device = true;
    cfg.index.kind = dedup::IndexKind::kSparse;
    cfg.batch_link = batch_link;
    return cfg;
  };

  const auto base = repo.snapshot(0.0, 1);
  const auto snap = repo.snapshot(0.05, 2);  // duplicate-heavy successor

  BackupRunStats per_chunk, batched;
  for (const bool batch_link : {false, true}) {
    BackupServer server(server_config(batch_link));
    BackupAgent agent;
    server.backup_image("base", as_bytes(base), repo, agent);
    const auto stats = server.backup_image("snap", as_bytes(snap), repo, agent);
    if (!stats.verified) {
      std::fprintf(stderr, "agent bench: backup verification failed\n");
      return 1;
    }
    (batch_link ? batched : per_chunk) = stats;
  }
  const double link_speedup = batched.link_seconds > 0
                                  ? per_chunk.link_seconds / batched.link_seconds
                                  : 0.0;
  const double e2e_speedup = per_chunk.backup_bandwidth_gbps > 0
                                 ? batched.backup_bandwidth_gbps /
                                       per_chunk.backup_bandwidth_gbps
                                 : 0.0;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"image_bytes\": %llu,\n",
               static_cast<unsigned long long>(repo_cfg.image_bytes));
  std::fprintf(f, "  \"change_probability\": 0.05,\n");
  std::fprintf(f, "  \"expected_chunk_bytes\": 2048,\n");
  std::fprintf(f, "  \"chunks\": %llu,\n",
               static_cast<unsigned long long>(batched.chunks));
  std::fprintf(f, "  \"duplicate_chunks\": %llu,\n",
               static_cast<unsigned long long>(batched.duplicate_chunks));
  std::fprintf(f,
               "  \"per_chunk\": {\"link_seconds\": %.6f, \"messages\": %llu, "
               "\"wire_bytes\": %llu, \"backup_gbps\": %.3f},\n",
               per_chunk.link_seconds,
               static_cast<unsigned long long>(per_chunk.link_messages),
               static_cast<unsigned long long>(per_chunk.wire_bytes),
               per_chunk.backup_bandwidth_gbps);
  std::fprintf(f,
               "  \"extent_batch\": {\"link_seconds\": %.6f, "
               "\"messages\": %llu, \"extents\": %llu, "
               "\"wire_bytes\": %llu, \"backup_gbps\": %.3f},\n",
               batched.link_seconds,
               static_cast<unsigned long long>(batched.link_messages),
               static_cast<unsigned long long>(batched.link_extents),
               static_cast<unsigned long long>(batched.wire_bytes),
               batched.backup_bandwidth_gbps);
  std::fprintf(f, "  \"link_speedup_batch_over_per_chunk\": %.3f,\n",
               link_speedup);
  std::fprintf(f, "  \"e2e_speedup_batch_over_per_chunk\": %.3f\n",
               e2e_speedup);
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("backup link stage, %llu chunks (~2 KB) at 5%% change:\n",
              static_cast<unsigned long long>(batched.chunks));
  std::printf("  per-chunk framing:  %8.2f ms  (%llu messages, %s on wire) "
              "-> %.2f Gbps end-to-end\n",
              per_chunk.link_seconds * 1e3,
              static_cast<unsigned long long>(per_chunk.link_messages),
              human_bytes(per_chunk.wire_bytes).c_str(),
              per_chunk.backup_bandwidth_gbps);
  std::printf("  extent batches:     %8.2f ms  (%llu messages, %llu extents, "
              "%s on wire) -> %.2f Gbps end-to-end\n",
              batched.link_seconds * 1e3,
              static_cast<unsigned long long>(batched.link_messages),
              static_cast<unsigned long long>(batched.link_extents),
              human_bytes(batched.wire_bytes).c_str(),
              batched.backup_bandwidth_gbps);
  std::printf("link-stage speedup: %.1fx | end-to-end: %.2fx  -> %s\n",
              link_speedup, e2e_speedup, path.c_str());
  if (link_speedup < 1.5) {
    std::fprintf(stderr,
                 "agent bench: link speedup %.2fx below the 1.5x bar at the "
                 "2 KB duplicate-heavy operating point\n",
                 link_speedup);
    return 1;
  }
  return 0;
}

// --- --transport_json mode --------------------------------------------------

int run_transport_json(const std::string& path, bool smoke) {
  using namespace shredder::backup;
  ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = smoke ? (8ull << 20) : (64ull << 20);
  repo_cfg.segment_bytes = smoke ? (256ull << 10) : (1ull << 20);
  repo_cfg.seed = 4711;
  ImageRepository repo(repo_cfg);

  // Same duplicate-heavy ~2 KB operating point as the agent bench; the
  // variable here is the wire, not the chunking. 64 KiB frames give the
  // fault schedule enough wire messages to bite at the 1% point, and
  // max_payload_retx = 2 hands persistent payload losses to the digest-
  // keyed repair protocol so the high-loss rows exercise it.
  auto server_config = [&] {
    BackupServerConfig cfg;
    cfg.backend = ChunkerBackend::kShredderGpu;
    cfg.chunker.window = 48;
    cfg.chunker.mask_bits = 11;  // ~2 KB chunks
    cfg.chunker.marker = 0x78;
    cfg.chunker.min_size = 1024;
    cfg.chunker.max_size = 8 * 1024;
    cfg.shredder.buffer_bytes = smoke ? (1ull << 20) : (8ull << 20);
    cfg.fingerprint_on_device = true;
    cfg.index.kind = dedup::IndexKind::kSparse;
    cfg.batch_link = true;
    cfg.transport.max_frame_bytes = 64 * 1024;
    cfg.transport.max_payload_retx = 2;
    return cfg;
  };

  const auto base = repo.snapshot(0.0, 1);
  const auto snap = repo.snapshot(0.25, 2);  // mixed dup/unique successor

  const double losses[] = {0.0, 0.01, 0.05, 0.10, 0.20};
  struct Point {
    double loss = 0;
    shredder::backup::TransportStats ts;
    bool degraded = false;
  };
  std::vector<Point> points;
  for (const double loss : losses) {
    auto cfg = server_config();
    cfg.transport.faults.drop = loss;
    if (loss > 0) {  // a lossy wire reorders and duplicates a little too
      cfg.transport.faults.reorder = 0.10;
      // ~2 frame service times of jitter: mild reordering that the sack
      // machinery should absorb without spurious fast retransmits.
      cfg.transport.faults.reorder_jitter_s = 100e-6;
      cfg.transport.faults.duplicate = 0.02;
    }
    cfg.transport.faults.seed = 29;
    BackupServer server(cfg);
    BackupAgent agent;
    server.backup_image("base", as_bytes(base), repo, agent);
    const auto stats = server.backup_image("snap", as_bytes(snap), repo, agent);
    if (!stats.verified) {
      std::fprintf(stderr,
                   "transport bench: verification failed at loss %.2f\n",
                   loss);
      return 1;
    }
    points.push_back({loss, stats.transport, stats.link_degraded});
  }
  const double lossless_goodput = points.front().ts.goodput_bps;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"image_bytes\": %llu,\n",
               static_cast<unsigned long long>(repo_cfg.image_bytes));
  std::fprintf(f, "  \"change_probability\": 0.25,\n");
  std::fprintf(f, "  \"expected_chunk_bytes\": 2048,\n");
  std::fprintf(f, "  \"max_frame_bytes\": 65536,\n");
  std::fprintf(f, "  \"sweep\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(
        f,
        "    {\"loss\": %.2f, \"goodput_gbps\": %.3f, "
        "\"goodput_vs_lossless\": %.3f, \"link_seconds\": %.6f, "
        "\"frames_sent\": %llu, \"retransmits\": %llu, "
        "\"fast_retransmits\": %llu, \"rto_fires\": %llu, "
        "\"payloads_stripped\": %llu, \"repair_frames\": %llu, "
        "\"window_stall_seconds\": %.6f, \"degraded\": %s}%s\n",
        p.loss, p.ts.goodput_bps / 1e9,
        lossless_goodput > 0 ? p.ts.goodput_bps / lossless_goodput : 0.0,
        p.ts.virtual_seconds,
        static_cast<unsigned long long>(p.ts.frames_sent),
        static_cast<unsigned long long>(p.ts.retransmits),
        static_cast<unsigned long long>(p.ts.fast_retransmits),
        static_cast<unsigned long long>(p.ts.rto_fires),
        static_cast<unsigned long long>(p.ts.payloads_stripped),
        static_cast<unsigned long long>(p.ts.repair_frames),
        p.ts.window_stall_seconds, p.degraded ? "true" : "false",
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("backup transport loss sweep (%s image, ~2 KB chunks):\n",
              human_bytes(repo_cfg.image_bytes).c_str());
  std::printf("  loss   goodput    vs lossless  retx (fast/rto)  repairs  "
              "degraded\n");
  for (const auto& p : points) {
    std::printf("  %3.0f%%  %7.2f Gbps   %5.2fx     %5llu (%llu/%llu)    "
                "%5llu   %s\n",
                p.loss * 100, p.ts.goodput_bps / 1e9,
                lossless_goodput > 0 ? p.ts.goodput_bps / lossless_goodput
                                     : 0.0,
                static_cast<unsigned long long>(p.ts.retransmits),
                static_cast<unsigned long long>(p.ts.fast_retransmits),
                static_cast<unsigned long long>(p.ts.rto_fires),
                static_cast<unsigned long long>(p.ts.repair_frames),
                p.degraded ? "yes" : "no");
  }
  std::printf("-> %s\n", path.c_str());
  const double ratio =
      lossless_goodput > 0 ? points[1].ts.goodput_bps / lossless_goodput : 0.0;
  if (ratio < 0.7) {
    std::fprintf(stderr,
                 "transport bench: goodput at 1%% loss is %.2fx lossless, "
                 "below the 0.7x bar — recovery is timeout-bound\n",
                 ratio);
    return 1;
  }
  return 0;
}

// --- --retention_json mode --------------------------------------------------

int run_retention_json(const std::string& path, bool smoke) {
  using namespace shredder::backup;
  ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = smoke ? (4ull << 20) : (32ull << 20);
  repo_cfg.segment_bytes = smoke ? (128ull << 10) : (512ull << 10);
  repo_cfg.seed = 9091;
  ImageRepository repo(repo_cfg);

  // Churn workload: every snapshot replaces ~95% of its segments with
  // snapshot-unique content, so deleting half the snapshots strands close to
  // half the store — the operating point where retention has to earn its
  // keep. The shared 5% (master segments) exercises the refcount walk: those
  // chunks must survive every delete.
  const int snapshots = smoke ? 6 : 8;
  const double change_prob = 0.95;

  const auto store = std::make_shared<shredder::dedup::ChunkStore>(
      /*deferred_reclaim=*/true);
  BackupServerConfig cfg;
  cfg.backend = ChunkerBackend::kPthreadsCpu;
  cfg.chunker.window = 48;
  cfg.chunker.mask_bits = 11;  // ~2 KB chunks, many entry-log containers
  cfg.chunker.marker = 0x78;
  cfg.chunker.min_size = 1024;
  cfg.chunker.max_size = 8 * 1024;
  cfg.index.kind = shredder::dedup::IndexKind::kSparse;
  cfg.batch_link = true;  // manifests ride the batched data plane
  cfg.store = store;
  BackupServer server(cfg);
  BackupAgent agent;

  std::vector<std::string> ids;
  std::vector<ByteVec> images;
  for (int i = 1; i <= snapshots; ++i) {
    ids.push_back("snap" + std::to_string(i));
    images.push_back(repo.snapshot(change_prob, static_cast<std::uint64_t>(i)));
    const auto stats =
        server.backup_image(ids.back(), as_bytes(images.back()), repo, agent);
    if (!stats.verified) {
      std::fprintf(stderr, "retention bench: backup of %s failed to verify\n",
                   ids.back().c_str());
      return 1;
    }
  }

  // Snapshot the manifests before any delete so the dead-digest set is still
  // reachable, then split the digest universe into survivors and unshared
  // dead (shared chunks stay probe-able forever).
  std::vector<std::vector<shredder::dedup::ChunkDigest>> manifests;
  for (const auto& id : ids) {
    manifests.push_back(server.retention().manifests().digests("", id));
  }
  std::unordered_set<shredder::dedup::ChunkDigest,
                     shredder::dedup::ChunkDigestHash>
      surviving;
  for (int i = 0; i < snapshots; i += 2) {
    surviving.insert(manifests[i].begin(), manifests[i].end());
  }
  std::unordered_set<shredder::dedup::ChunkDigest,
                     shredder::dedup::ChunkDigestHash>
      dead;
  for (int i = 1; i < snapshots; i += 2) {
    for (const auto& d : manifests[i]) {
      if (surviving.find(d) == surviving.end()) dead.insert(d);
    }
  }

  const auto occ_full = store->occupancy();
  std::uint64_t bytes_zeroed = 0, chunks_released = 0;
  double delete_seconds = 0;
  for (int i = 1; i < snapshots; i += 2) {
    const auto ds = server.delete_image(ids[i]);
    bytes_zeroed += ds.bytes_zeroed;
    chunks_released += ds.chunks_released;
    delete_seconds += ds.virtual_seconds;
    agent.delete_image(ids[i]);
  }

  const auto gc = server.gc();
  const auto occ_after = store->occupancy();
  const double reclaim_ratio =
      bytes_zeroed > 0 ? static_cast<double>(gc.bytes_freed) / bytes_zeroed
                       : 0.0;
  const double store_shrink =
      occ_full.bytes > 0
          ? 1.0 - static_cast<double>(occ_after.bytes) / occ_full.bytes
          : 0.0;

  // Record every surviving (and dead) probe decision, compact, re-probe:
  // placement depends only on (bucket, signature), so compaction must be
  // invisible to lookups — identical hit/miss, offset and size.
  struct Probe {
    bool hit;
    std::uint64_t offset, size;
  };
  auto probe_all = [&](const std::unordered_set<
                       shredder::dedup::ChunkDigest,
                       shredder::dedup::ChunkDigestHash>& set) {
    std::vector<Probe> out;
    out.reserve(set.size());
    for (const auto& d : set) {
      const auto loc = server.index().lookup(d);
      out.push_back({loc.has_value(), loc ? loc->store_offset : 0,
                     loc ? loc->size : 0});
    }
    return out;
  };
  const auto live_before = probe_all(surviving);
  const auto cs = server.compact_index();
  const auto live_after = probe_all(surviving);
  bool probes_identical = true;
  for (std::size_t i = 0; i < live_before.size(); ++i) {
    if (live_before[i].hit != live_after[i].hit ||
        live_before[i].offset != live_after[i].offset ||
        live_before[i].size != live_after[i].size) {
      probes_identical = false;
      break;
    }
  }
  bool dead_missing = true;
  for (const auto& d : dead) {
    if (server.index().lookup(d).has_value()) {
      dead_missing = false;
      break;
    }
  }
  const double log_shrink =
      cs.index.entries_before > 0
          ? 1.0 - static_cast<double>(cs.index.entries_after) /
                      cs.index.entries_before
          : 0.0;

  bool survivors_identical = true;
  for (int i = 0; i < snapshots; i += 2) {
    if (agent.recreate(ids[i]) != images[i]) {
      survivors_identical = false;
      break;
    }
  }

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"image_bytes\": %llu,\n",
               static_cast<unsigned long long>(repo_cfg.image_bytes));
  std::fprintf(f, "  \"snapshots\": %d,\n", snapshots);
  std::fprintf(f, "  \"deleted\": %d,\n", snapshots / 2);
  std::fprintf(f, "  \"change_probability\": %.2f,\n", change_prob);
  std::fprintf(f, "  \"chunks_released\": %llu,\n",
               static_cast<unsigned long long>(chunks_released));
  std::fprintf(f, "  \"bytes_zeroed\": %llu,\n",
               static_cast<unsigned long long>(bytes_zeroed));
  std::fprintf(f,
               "  \"gc\": {\"epoch\": %llu, \"chunks_freed\": %llu, "
               "\"bytes_freed\": %llu, \"kept_pinned\": %llu, "
               "\"resurrected\": %llu},\n",
               static_cast<unsigned long long>(gc.epoch),
               static_cast<unsigned long long>(gc.chunks_freed),
               static_cast<unsigned long long>(gc.bytes_freed),
               static_cast<unsigned long long>(gc.kept_pinned),
               static_cast<unsigned long long>(gc.resurrected));
  std::fprintf(f, "  \"store_bytes_before\": %llu,\n",
               static_cast<unsigned long long>(occ_full.bytes));
  std::fprintf(f, "  \"store_bytes_after\": %llu,\n",
               static_cast<unsigned long long>(occ_after.bytes));
  std::fprintf(f, "  \"store_shrink\": %.3f,\n", store_shrink);
  std::fprintf(f, "  \"dead_bytes_reclaimed\": %.3f,\n", reclaim_ratio);
  std::fprintf(f,
               "  \"compaction\": {\"entries_before\": %llu, "
               "\"entries_after\": %llu, \"dropped\": %llu, "
               "\"containers_scanned\": %llu, \"containers_rewritten\": %llu, "
               "\"manifest_records_dropped\": %llu},\n",
               static_cast<unsigned long long>(cs.index.entries_before),
               static_cast<unsigned long long>(cs.index.entries_after),
               static_cast<unsigned long long>(cs.index.dropped),
               static_cast<unsigned long long>(cs.index.containers_scanned),
               static_cast<unsigned long long>(cs.index.containers_rewritten),
               static_cast<unsigned long long>(cs.manifest.dropped_records));
  std::fprintf(f, "  \"log_shrink\": %.3f,\n", log_shrink);
  std::fprintf(f,
               "  \"retention_seconds\": {\"delete\": %.6f, \"gc\": %.6f, "
               "\"compact\": %.6f},\n",
               delete_seconds, gc.virtual_seconds, cs.virtual_seconds);
  std::fprintf(f, "  \"survivors_bit_identical\": %s,\n",
               survivors_identical ? "true" : "false");
  std::fprintf(f, "  \"probe_decisions_identical\": %s,\n",
               probes_identical ? "true" : "false");
  std::fprintf(f, "  \"dead_digests_miss\": %s\n",
               dead_missing ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("retention churn, %d x %s snapshots at %.0f%% change, "
              "%d deleted:\n",
              snapshots, human_bytes(repo_cfg.image_bytes).c_str(),
              change_prob * 100, snapshots / 2);
  std::printf("  store:  %s -> %s  (%.1f%% reclaimed, %.1f%% of dead bytes "
              "freed by GC)\n",
              human_bytes(occ_full.bytes).c_str(),
              human_bytes(occ_after.bytes).c_str(), store_shrink * 100,
              reclaim_ratio * 100);
  std::printf("  index:  %llu -> %llu log entries  (%.1f%% compacted, "
              "%llu/%llu containers rewritten)\n",
              static_cast<unsigned long long>(cs.index.entries_before),
              static_cast<unsigned long long>(cs.index.entries_after),
              log_shrink * 100,
              static_cast<unsigned long long>(cs.index.containers_rewritten),
              static_cast<unsigned long long>(cs.index.containers_scanned));
  std::printf("  checks: survivors %s, probe decisions %s, dead digests %s\n",
              survivors_identical ? "bit-identical" : "CORRUPT",
              probes_identical ? "bit-identical" : "CHANGED",
              dead_missing ? "miss" : "STILL PRESENT");
  std::printf("  cost:   delete %.1f ms, gc %.1f ms, compact %.1f ms "
              "(virtual) -> %s\n",
              delete_seconds * 1e3, gc.virtual_seconds * 1e3,
              cs.virtual_seconds * 1e3, path.c_str());

  if (!survivors_identical) {
    std::fprintf(stderr,
                 "retention bench: a surviving image no longer recreates "
                 "bit-identically after delete+GC+compaction\n");
    return 1;
  }
  if (!probes_identical || !dead_missing) {
    std::fprintf(stderr,
                 "retention bench: sparse-index probe decisions changed "
                 "across compaction\n");
    return 1;
  }
  if (reclaim_ratio < 0.8) {
    std::fprintf(stderr,
                 "retention bench: GC reclaimed %.1f%% of dead bytes, below "
                 "the 80%% bar\n",
                 reclaim_ratio * 100);
    return 1;
  }
  if (store_shrink < 0.4 || log_shrink < 0.4) {
    std::fprintf(stderr,
                 "retention bench: store shrank %.1f%%, entry log %.1f%% — "
                 "both must shrink >= 40%% after deleting half the "
                 "snapshots\n",
                 store_shrink * 100, log_shrink * 100);
    return 1;
  }
  return 0;
}

// --- --obs_json mode --------------------------------------------------------

// Relative disagreement of a traced busy time vs the timeline's own
// accounting; exact-zero pairs agree perfectly.
double busy_rel_err(double traced, double reference) {
  if (reference == 0.0) return traced == 0.0 ? 0.0 : 1.0;
  return std::abs(traced - reference) / reference;
}

int run_obs_json(const std::string& path, bool smoke) {
  using namespace shredder::backup;

  // Part 1 — the "compiled in but disabled" bar: the same pipeline, once
  // with no registry and once with a disabled one attached, best-of-N wall
  // time each (interleaved so drift hits both alike). The hooks are per
  // buffer, so the honest expectation is noise-level overhead; the bar
  // catches anyone moving them into a per-byte loop.
  const std::size_t overhead_bytes = smoke ? (8u << 20) : (16u << 20);
  const ByteVec overhead_input = random_bytes(overhead_bytes, 1234);
  core::ShredderConfig scfg;
  scfg.chunker = default_config();
  scfg.buffer_bytes = 1u << 20;
  obs::Registry disabled_reg;
  disabled_reg.set_enabled(false);
  core::Shredder plain(scfg);
  auto instr_cfg = scfg;
  instr_cfg.registry = &disabled_reg;
  core::Shredder instrumented(instr_cfg);
  plain.run(as_bytes(overhead_input));  // warmup both
  instrumented.run(as_bytes(overhead_input));
  // Best-of-N with the two variants alternating (and the starting side
  // flipping each round) so scheduler drift and cache state hit both alike;
  // the minimum is the least-perturbed run of each.
  const int reps = smoke ? 7 : 9;
  double best_plain = 1e300, best_instr = 1e300;
  for (int r = 0; r < 2 * reps; ++r) {
    const bool instr_turn = (r % 4 == 1) || (r % 4 == 2);
    Stopwatch w;
    (instr_turn ? instrumented : plain).run(as_bytes(overhead_input));
    double& best = instr_turn ? best_instr : best_plain;
    best = std::min(best, w.elapsed_seconds());
  }
  const double overhead_pct = (best_instr / best_plain - 1.0) * 100.0;

  // Part 2 — multi-tenant service run with metrics + tracing on: N tenant
  // streams through one device, trace exported for Perfetto, and the
  // exported per-engine busy time cross-checked against the timeline's own
  // engine_busy accounting.
  obs::Registry svc_reg;
  obs::Tracer svc_tracer;
  service::ServiceConfig cfg;
  cfg.buffer_bytes = smoke ? (256u << 10) : (512u << 10);
  cfg.fingerprint_on_device = true;  // fingerprint-kernel spans too
  cfg.registry = &svc_reg;
  cfg.tracer = &svc_tracer;
  const std::size_t n_tenants = smoke ? 4 : 16;
  cfg.max_tenants = n_tenants;
  const std::size_t per_tenant = smoke ? (512u << 10) : (2u << 20);
  std::vector<ByteVec> payloads;
  for (std::size_t k = 0; k < n_tenants; ++k) {
    payloads.push_back(random_bytes(per_tenant, 7100 + k));
  }
  service::ChunkingService svc(cfg);
  {
    std::vector<service::ChunkingService::StreamId> ids;
    for (std::size_t k = 0; k < n_tenants; ++k) ids.push_back(svc.open());
    std::vector<std::thread> producers;
    for (std::size_t k = 0; k < n_tenants; ++k) {
      producers.emplace_back([&, k] {
        svc.submit(ids[k], as_bytes(payloads[k]));
        svc.finish(ids[k]);
      });
    }
    for (auto& t : producers) t.join();
    for (const auto id : ids) svc.wait(id);
  }
  const auto svc_report = svc.shutdown();
  const double svc_err = std::max(
      {busy_rel_err(svc_tracer.track_busy("engine/h2d"),
                    svc_report.h2d_busy_seconds),
       busy_rel_err(svc_tracer.track_busy("engine/compute"),
                    svc_report.compute_busy_seconds),
       busy_rel_err(svc_tracer.track_busy("engine/d2h"),
                    svc_report.d2h_busy_seconds)});
  const std::string svc_trace_path = "TRACE_obs_service.json";
  svc_tracer.write_json(svc_trace_path);

  // Part 3 — backup over a 1%-loss transport, chunked through a shared
  // service so one trace carries the whole story: engine spans, per-tenant
  // buffers, scheduler series, and the wire's frame/retransmit/repair
  // lifecycle on the transport tracks.
  obs::Registry wire_reg;
  obs::Tracer wire_tracer;
  service::ServiceConfig scv2;
  scv2.chunker.window = 48;
  scv2.chunker.mask_bits = 11;  // ~2 KB chunks: enough frames for 1% loss
  scv2.chunker.marker = 0x78;
  scv2.chunker.min_size = 1024;
  scv2.chunker.max_size = 8 * 1024;
  scv2.buffer_bytes = smoke ? (512u << 10) : (1u << 20);
  scv2.fingerprint_on_device = true;
  scv2.max_tenants = 2;
  scv2.registry = &wire_reg;
  scv2.tracer = &wire_tracer;
  auto wire_svc = std::make_shared<service::ChunkingService>(scv2);

  BackupServerConfig bcfg;
  bcfg.backend = ChunkerBackend::kSharedService;
  bcfg.service = wire_svc;
  bcfg.chunker = scv2.chunker;
  bcfg.fingerprint_on_device = true;
  bcfg.index.kind = dedup::IndexKind::kSparse;
  bcfg.batch_link = true;
  bcfg.transport.max_frame_bytes = 64 * 1024;
  bcfg.transport.max_payload_retx = 2;
  bcfg.transport.faults.drop = 0.01;
  bcfg.transport.faults.reorder = 0.10;
  bcfg.transport.faults.reorder_jitter_s = 100e-6;
  bcfg.transport.faults.duplicate = 0.02;
  bcfg.transport.faults.seed = 29;
  bcfg.registry = &wire_reg;
  bcfg.tracer = &wire_tracer;

  ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = smoke ? (4ull << 20) : (8ull << 20);
  repo_cfg.segment_bytes = 256ull << 10;
  repo_cfg.seed = 4711;
  ImageRepository repo(repo_cfg);
  const auto base = repo.snapshot(0.0, 1);
  const auto snap = repo.snapshot(0.25, 2);

  BackupServer server(bcfg);
  BackupAgent agent;
  server.backup_image("base", as_bytes(base), repo, agent);
  const auto wire_stats = server.backup_image("snap", as_bytes(snap), repo,
                                              agent);
  if (!wire_stats.verified) {
    std::fprintf(stderr, "obs bench: lossy backup verification failed\n");
    return 1;
  }
  const auto wire_report = wire_svc->shutdown();
  const double wire_err = std::max(
      {busy_rel_err(wire_tracer.track_busy("engine/h2d"),
                    wire_report.h2d_busy_seconds),
       busy_rel_err(wire_tracer.track_busy("engine/compute"),
                    wire_report.compute_busy_seconds),
       busy_rel_err(wire_tracer.track_busy("engine/d2h"),
                    wire_report.d2h_busy_seconds)});
  const std::string wire_trace_path = "TRACE_obs_transport.json";
  wire_tracer.write_json(wire_trace_path);
  const std::uint64_t wire_recoveries =
      wire_stats.transport.retransmits + wire_stats.transport.repair_frames;

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"disabled_overhead_pct\": %.3f,\n", overhead_pct);
  std::fprintf(f, "  \"overhead_input_bytes\": %llu,\n",
               static_cast<unsigned long long>(overhead_bytes));
  std::fprintf(
      f,
      "  \"service\": {\"tenants\": %zu, \"buffers\": %llu, "
      "\"trace_events\": %zu, \"engine_busy_max_rel_err\": %.6f, "
      "\"trace_path\": \"%s\"},\n",
      n_tenants, static_cast<unsigned long long>(svc_report.n_buffers),
      svc_tracer.event_count(), svc_err, svc_trace_path.c_str());
  std::fprintf(
      f,
      "  \"transport\": {\"loss\": 0.01, \"retransmits\": %llu, "
      "\"repair_frames\": %llu, \"trace_events\": %zu, "
      "\"engine_busy_max_rel_err\": %.6f, \"trace_path\": \"%s\"},\n",
      static_cast<unsigned long long>(wire_stats.transport.retransmits),
      static_cast<unsigned long long>(wire_stats.transport.repair_frames),
      wire_tracer.event_count(), wire_err, wire_trace_path.c_str());
  // The registry's own export, verbatim — the machine-readable face of the
  // service run's metrics (docs/observability.md).
  std::fprintf(f, "  \"service_metrics\": %s\n", svc_reg.to_json().c_str());
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("obs overhead (registry disabled): %+.2f%%  "
              "(plain %.3f ms vs instrumented %.3f ms, best of %d)\n",
              overhead_pct, best_plain * 1e3, best_instr * 1e3, reps);
  std::printf("service run:   %zu tenants, %llu buffers, %zu trace events, "
              "engine-busy err %.4f%% -> %s\n",
              n_tenants, static_cast<unsigned long long>(svc_report.n_buffers),
              svc_tracer.event_count(), svc_err * 100, svc_trace_path.c_str());
  std::printf("transport run: 1%% loss, %llu retransmits, %llu repairs, "
              "%zu trace events, engine-busy err %.4f%% -> %s\n",
              static_cast<unsigned long long>(wire_stats.transport.retransmits),
              static_cast<unsigned long long>(
                  wire_stats.transport.repair_frames),
              wire_tracer.event_count(), wire_err * 100,
              wire_trace_path.c_str());
  std::printf("-> %s\n", path.c_str());

  if (overhead_pct > 2.0) {
    std::fprintf(stderr,
                 "obs bench: disabled-registry overhead %.2f%% exceeds the "
                 "2%% bar\n",
                 overhead_pct);
    return 1;
  }
  if (svc_err > 0.01 || wire_err > 0.01) {
    std::fprintf(stderr,
                 "obs bench: traced engine busy disagrees with "
                 "GpuTimeline::engine_busy beyond 1%% (service %.4f, "
                 "transport %.4f)\n",
                 svc_err, wire_err);
    return 1;
  }
  if (svc_tracer.event_count() == 0 || wire_tracer.event_count() == 0) {
    std::fprintf(stderr, "obs bench: empty trace export\n");
    return 1;
  }
  if (wire_recoveries == 0) {
    std::fprintf(stderr,
                 "obs bench: 1%% loss run recorded no retransmits or "
                 "repairs - fault injection is not reaching the wire\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chunking_json") == 0) {
      return run_chunking_json("BENCH_chunking.json");
    }
    if (std::strncmp(argv[i], "--chunking_json=", 16) == 0) {
      return run_chunking_json(argv[i] + 16);
    }
    if (std::strcmp(argv[i], "--service_json") == 0) {
      return run_service_json("BENCH_service.json", /*smoke=*/false);
    }
    if (std::strncmp(argv[i], "--service_json=", 15) == 0) {
      return run_service_json(argv[i] + 15, /*smoke=*/false);
    }
    if (std::strcmp(argv[i], "--service_smoke_json") == 0) {
      return run_service_json("BENCH_service_smoke.json", /*smoke=*/true);
    }
    if (std::strncmp(argv[i], "--service_smoke_json=", 21) == 0) {
      return run_service_json(argv[i] + 21, /*smoke=*/true);
    }
    if (std::strcmp(argv[i], "--sink_zero_copy_json") == 0) {
      return run_sink_zero_copy_json("BENCH_sink.json", /*smoke=*/false);
    }
    if (std::strncmp(argv[i], "--sink_zero_copy_json=", 22) == 0) {
      return run_sink_zero_copy_json(argv[i] + 22, /*smoke=*/false);
    }
    if (std::strcmp(argv[i], "--sink_zero_copy_smoke_json") == 0) {
      return run_sink_zero_copy_json("BENCH_sink_smoke.json", /*smoke=*/true);
    }
    if (std::strncmp(argv[i], "--sink_zero_copy_smoke_json=", 28) == 0) {
      return run_sink_zero_copy_json(argv[i] + 28, /*smoke=*/true);
    }
    if (std::strcmp(argv[i], "--fingerprint_json") == 0) {
      return run_fingerprint_json("BENCH_fingerprint.json", /*smoke=*/false);
    }
    if (std::strncmp(argv[i], "--fingerprint_json=", 19) == 0) {
      return run_fingerprint_json(argv[i] + 19, /*smoke=*/false);
    }
    if (std::strcmp(argv[i], "--fingerprint_smoke_json") == 0) {
      return run_fingerprint_json("BENCH_fingerprint_smoke.json",
                                  /*smoke=*/true);
    }
    if (std::strncmp(argv[i], "--fingerprint_smoke_json=", 25) == 0) {
      return run_fingerprint_json(argv[i] + 25, /*smoke=*/true);
    }
    if (std::strcmp(argv[i], "--index_json") == 0) {
      return run_index_json("BENCH_index.json", /*smoke=*/false);
    }
    if (std::strncmp(argv[i], "--index_json=", 13) == 0) {
      return run_index_json(argv[i] + 13, /*smoke=*/false);
    }
    if (std::strcmp(argv[i], "--index_smoke_json") == 0) {
      return run_index_json("BENCH_index_smoke.json", /*smoke=*/true);
    }
    if (std::strncmp(argv[i], "--index_smoke_json=", 19) == 0) {
      return run_index_json(argv[i] + 19, /*smoke=*/true);
    }
    if (std::strcmp(argv[i], "--agent_json") == 0) {
      return run_agent_json("BENCH_agent.json", /*smoke=*/false);
    }
    if (std::strncmp(argv[i], "--agent_json=", 13) == 0) {
      return run_agent_json(argv[i] + 13, /*smoke=*/false);
    }
    if (std::strcmp(argv[i], "--agent_smoke_json") == 0) {
      return run_agent_json("BENCH_agent_smoke.json", /*smoke=*/true);
    }
    if (std::strncmp(argv[i], "--agent_smoke_json=", 19) == 0) {
      return run_agent_json(argv[i] + 19, /*smoke=*/true);
    }
    if (std::strcmp(argv[i], "--transport_json") == 0) {
      return run_transport_json("BENCH_transport.json", /*smoke=*/false);
    }
    if (std::strncmp(argv[i], "--transport_json=", 17) == 0) {
      return run_transport_json(argv[i] + 17, /*smoke=*/false);
    }
    if (std::strcmp(argv[i], "--transport_smoke_json") == 0) {
      return run_transport_json("BENCH_transport_smoke.json", /*smoke=*/true);
    }
    if (std::strncmp(argv[i], "--transport_smoke_json=", 23) == 0) {
      return run_transport_json(argv[i] + 23, /*smoke=*/true);
    }
    if (std::strcmp(argv[i], "--obs_json") == 0) {
      return run_obs_json("BENCH_obs.json", /*smoke=*/false);
    }
    if (std::strncmp(argv[i], "--obs_json=", 11) == 0) {
      return run_obs_json(argv[i] + 11, /*smoke=*/false);
    }
    if (std::strcmp(argv[i], "--obs_smoke_json") == 0) {
      return run_obs_json("BENCH_obs.json", /*smoke=*/true);
    }
    if (std::strncmp(argv[i], "--obs_smoke_json=", 17) == 0) {
      return run_obs_json(argv[i] + 17, /*smoke=*/true);
    }
    if (std::strcmp(argv[i], "--retention_json") == 0) {
      return run_retention_json("BENCH_retention.json", /*smoke=*/false);
    }
    if (std::strncmp(argv[i], "--retention_json=", 17) == 0) {
      return run_retention_json(argv[i] + 17, /*smoke=*/false);
    }
    if (std::strcmp(argv[i], "--retention_smoke_json") == 0) {
      return run_retention_json("BENCH_retention_smoke.json", /*smoke=*/true);
    }
    if (std::strncmp(argv[i], "--retention_smoke_json=", 23) == 0) {
      return run_retention_json(argv[i] + 23, /*smoke=*/true);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
