// Figure 15 — speedup of incremental MapReduce (Incoop on Inc-HDFS, splits
// produced by Shredder) over stock Hadoop, as the fraction of changed input
// grows from 0% to 25%, for Word-Count, Co-occurrence Matrix and K-means.
//
// Speedups are real wall-clock ratios of the two runtimes executing on the
// same mutated input; outputs are verified equal for every cell.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "inchdfs/experiment.h"

int main() {
  using namespace shredder;
  using namespace shredder::inchdfs;
  bench::print_header(
      "F15", "Figure 15: incremental-computation speedup vs input change",
      "log-scale speedups, largest at small change fractions and decaying as "
      "changes grow; map-heavy jobs (co-occurrence) benefit most");

  const double changes[] = {0.0, 0.05, 0.10, 0.15, 0.20, 0.25};
  const Workload workloads[] = {Workload::kWordCount, Workload::kCoOccurrence,
                                Workload::kKMeans};

  TablePrinter t({"Change%", "Word-Count", "Co-occurrence", "K-means",
                  "MapReuse(WC)"},
                 15);
  for (const double change : changes) {
    std::vector<std::string> row = {TablePrinter::fmt(change * 100, 0)};
    std::string reuse;
    for (const Workload w : workloads) {
      ExperimentConfig cfg;
      cfg.workload = w;
      cfg.input_bytes = w == Workload::kKMeans ? 8ull << 20 : 24ull << 20;
      cfg.change_fraction = change;
      cfg.seed = 1500 + static_cast<std::uint64_t>(change * 100);
      const auto r = run_incremental_experiment(cfg);
      row.push_back(TablePrinter::fmt(r.speedup, 1) + "x" +
                    (r.outputs_match ? "" : " (MISMATCH)"));
      if (w == Workload::kWordCount) {
        reuse = std::to_string(r.map_reused) + "/" +
                std::to_string(r.map_tasks);
      }
    }
    row.push_back(reuse);
    t.add_row(row);
  }
  t.print();
  std::printf("(speedup = stock-runtime wall time / memoized-runtime wall "
              "time on the same mutated input; outputs verified equal)\n");
  return 0;
}
