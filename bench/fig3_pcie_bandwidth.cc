// Figure 3 — bandwidth test between host and device.
//
// Sweeps transfer sizes from 4 KB to 64 MB for both directions and both
// host-memory kinds, printing effective bandwidth in MB/s like the paper's
// log-log plot.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "gpusim/dma.h"
#include "gpusim/spec.h"

int main() {
  using namespace shredder;
  using namespace shredder::gpu;
  bench::print_header(
      "F3", "Figure 3: bandwidth test between host and device",
      "small transfers overhead-dominated; pinned saturates ~256 KB, "
      "pageable only ~32 MB; >=32 MB pinned-vs-pageable gap insignificant; "
      "plateaus ~5.4 (H2D) / ~5.1 (D2H) GB/s");

  const DeviceSpec spec;
  const std::vector<std::uint64_t> sizes = {
      4ull << 10,  16ull << 10, 32ull << 10, 64ull << 10, 256ull << 10,
      1ull << 20,  4ull << 20,  16ull << 20, 32ull << 20, 64ull << 20};

  TablePrinter t({"BufferSize", "H2D-Pageable", "H2D-Pinned", "D2H-Pageable",
                  "D2H-Pinned"},
                 15);
  auto mbps = [&](std::uint64_t bytes, Direction dir, HostMemKind kind) {
    return TablePrinter::fmt(
        dma_effective_bw(spec, bytes, dir, kind) / 1e6, 1);
  };
  for (const auto size : sizes) {
    t.add_row({bench::mb_label(size),
               mbps(size, Direction::kHostToDevice, HostMemKind::kPageable),
               mbps(size, Direction::kHostToDevice, HostMemKind::kPinned),
               mbps(size, Direction::kDeviceToHost, HostMemKind::kPageable),
               mbps(size, Direction::kDeviceToHost, HostMemKind::kPinned)});
  }
  std::printf("(all columns MB/s)\n");
  t.print();

  // The two saturation points the paper highlights.
  const double pinned_peak = dma_effective_bw(
      spec, 64ull << 20, Direction::kHostToDevice, HostMemKind::kPinned);
  const double pinned_256k = dma_effective_bw(
      spec, 256ull << 10, Direction::kHostToDevice, HostMemKind::kPinned);
  const double pageable_32m = dma_effective_bw(
      spec, 32ull << 20, Direction::kHostToDevice, HostMemKind::kPageable);
  std::printf("\npinned @256KB reaches %.0f%% of peak; pageable @32MB reaches "
              "%.0f%% of pinned peak\n",
              100.0 * pinned_256k / pinned_peak,
              100.0 * pageable_32m / pinned_peak);
  return 0;
}
