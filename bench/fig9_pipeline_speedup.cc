// Figure 9 — speedup of the multi-stage streaming pipeline (§4.2) over
// fully serialized execution, admitting 2, 3 or 4 buffers to the pipeline.
//
// Per-buffer stage durations (Reader -> Transfer -> Kernel -> Store) come
// from real runs under the C2050 model; speedup(k) = serialized makespan /
// pipelined makespan with k in-flight buffers over a 1 GB stream.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "core/shredder.h"
#include "gpusim/timeline.h"

int main() {
  using namespace shredder;
  using namespace shredder::core;
  bench::print_header(
      "F9", "Figure 9: streaming-pipeline speedup (2/3/4 stages admitted)",
      "speedup grows with admitted stages but the full 4-stage pipeline "
      "reaches ~2x, not 4x, because stage costs are unequal "
      "(kernel and reader dominate)");

  TablePrinter t({"BufferSize", "2-Staged", "3-Staged", "4-Staged",
                  "Bottleneck"},
                 13);
  const std::uint64_t total = 1ull << 30;
  for (const auto buffer : bench::paper_buffer_sweep()) {
    ShredderConfig cfg;
    cfg.buffer_bytes = buffer;
    cfg.mode = GpuMode::kStreams;
    cfg.kernel.coalesced = false;  // the §4.2-era kernel, as in the figure
    Shredder shredder(cfg);
    const std::uint64_t sample_bytes = std::min<std::uint64_t>(
        total, std::max<std::uint64_t>(3 * buffer, 128ull << 20));
    SyntheticSource source(sample_bytes, 21, cfg.host.reader_bw);
    const auto result = shredder.run(source);
    const auto& m = result.mean_stage_seconds;
    const std::vector<double> stages = {m.reader, m.transfer, m.kernel,
                                        m.store};
    const auto n = static_cast<std::uint64_t>(total / buffer);
    const double serial = gpu::pipeline_makespan(stages, n, 1);
    std::vector<std::string> row = {bench::mb_label(buffer)};
    for (std::size_t slots = 2; slots <= 4; ++slots) {
      const double pipelined = gpu::pipeline_makespan(stages, n, slots);
      row.push_back(TablePrinter::fmt(serial / pipelined, 2));
    }
    const char* names[] = {"reader", "transfer", "kernel", "store"};
    std::size_t bottleneck = 0;
    for (std::size_t s = 1; s < stages.size(); ++s) {
      if (stages[s] > stages[bottleneck]) bottleneck = s;
    }
    row.push_back(names[bottleneck]);
    t.add_row(row);
  }
  t.print();
  std::printf("(speedup = serialized / pipelined makespan over a 1 GB "
              "stream)\n");

  // Under the C2050 calibration the kernel stage holds >50% of the total,
  // so two in-flight buffers already keep the bottleneck busy and 2/3/4
  // admissions coincide. The graded separation of the paper's figure
  // emerges whenever stage costs are comparable (e.g. a host doing real
  // store-side I/O); demonstrated here with balanced stages:
  const std::vector<double> balanced = {1.0, 1.0, 1.0, 1.0};
  std::printf("\nbalanced-stage sensitivity (equal stage costs, 64 buffers): ");
  const double serial_b = gpu::pipeline_makespan(balanced, 64, 1);
  for (std::size_t slots = 2; slots <= 4; ++slots) {
    std::printf("%zu-staged %.2fx  ", slots,
                serial_b / gpu::pipeline_makespan(balanced, 64, slots));
  }
  std::printf("\n");
  return 0;
}
