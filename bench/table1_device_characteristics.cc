// Table 1 — performance characteristics of the (simulated) GPU.
//
// Prints the calibrated DeviceSpec parameters in the paper's format plus
// derived probes from the actual models (effective DMA bandwidth at large
// buffers, device-memory streaming bandwidth), so the calibration is
// auditable against Table 1 of the paper.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "gpusim/dma.h"
#include "gpusim/dram.h"
#include "gpusim/spec.h"

int main() {
  using namespace shredder;
  using namespace shredder::gpu;
  bench::print_header(
      "T1", "Table 1: performance characteristics of the GPU (Tesla C2050)",
      "processing 1030 GFlops; reader 2 GB/s; H2D 5.406 GB/s; D2H 5.129 GB/s; "
      "device-memory latency 400-600 cycles; device bandwidth 144 GB/s; "
      "shared memory ~L1 latency");

  const DeviceSpec spec;
  const HostSpec host;

  TablePrinter t({"Parameter", "Value"}, 42);
  t.add_row({"GPU processing capacity",
             std::to_string(spec.total_sps()) + " SPs @ " +
                 TablePrinter::fmt(spec.clock_hz / 1e9, 2) + " GHz (" +
                 TablePrinter::fmt(2.0 * spec.total_sps() * spec.clock_hz / 1e9,
                                   0) +
                 " GFlops FMA)"});
  t.add_row({"Reader (I/O) bandwidth",
             TablePrinter::fmt(host.reader_bw / 1e9, 3) + " GB/s"});
  t.add_row({"Host-to-device bandwidth (pinned, 64MB)",
             TablePrinter::fmt(dma_effective_bw(spec, 64ull << 20,
                                                Direction::kHostToDevice,
                                                HostMemKind::kPinned) /
                                   1e9,
                               3) +
                 " GB/s"});
  t.add_row({"Device-to-host bandwidth (pinned, 64MB)",
             TablePrinter::fmt(dma_effective_bw(spec, 64ull << 20,
                                                Direction::kDeviceToHost,
                                                HostMemKind::kPinned) /
                                   1e9,
                               3) +
                 " GB/s"});
  t.add_row({"Device memory latency",
             std::to_string(spec.mem_latency_cycles) + " cycles (400-600)"});
  t.add_row({"Device memory peak bandwidth",
             TablePrinter::fmt(spec.mem_clock_bw / 1e9, 0) + " GB/s (" +
                 std::to_string(spec.mem_channels) + " channels x " +
                 std::to_string(spec.banks_per_channel) + " banks, " +
                 std::to_string(spec.row_bytes) + " B rows)"});
  t.add_row({"Shared memory", std::to_string(spec.shared_mem_per_sm / 1024) +
                                  " KB per SM, L1-class latency"});
  t.add_row({"Global memory", bench::mb_label(spec.global_mem_bytes)});
  t.print();

  // Derived probe: streaming device-memory bandwidth achieved by a single
  // sequential reader (coalesced bursts, almost no row switches).
  const double seq_fraction = estimate_row_switch_fraction(spec, 1, 128);
  const double seq_seconds = dram_time_seconds(
      spec, (1ull << 30) / spec.burst_bytes, seq_fraction);
  std::printf("\nderived: sequential device-memory stream: %.1f GB/s "
              "(row-switch fraction %.4f)\n",
              1.0 / seq_seconds, seq_fraction);
  const double conflicted = dram_time_seconds(
      spec, (1ull << 30) / spec.burst_bytes, 1.0);
  std::printf("derived: fully bank-conflicted stream:     %.1f GB/s\n",
              1.0 / conflicted);
  return 0;
}
