// Figure 11 — chunking-kernel time for 1 GB of data: direct device-memory
// access vs the memory-coalescing kernel (§4.3), across buffer sizes.
//
// Both kernels do the real Rabin work on real bytes and produce identical
// boundaries; the difference is purely how they touch DRAM (per-thread 16 B
// segments vs cooperative 128 B half-warp transactions staged into shared
// memory), which the bank/row model turns into time.
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "core/shredder.h"

int main() {
  using namespace shredder;
  using namespace shredder::core;
  bench::print_header(
      "F11", "Figure 11: chunking-kernel time, 1 GB, vs buffer size",
      "coalescing cuts kernel time ~8x (bank conflicts eliminated); flat "
      "across buffer sizes because the 48 KB shared-memory granularity "
      "does not change with the buffer");

  TablePrinter t({"BufferSize", "DeviceMem(ms)", "Coalesced(ms)", "Ratio",
                  "RowSwitch%", "Coal.RowSw%"},
                 14);
  const double total = 1ull << 30;
  for (const auto buffer : bench::paper_buffer_sweep()) {
    double kernel_ms[2];
    double row_switch[2];
    for (int coal = 0; coal < 2; ++coal) {
      ShredderConfig cfg;
      cfg.buffer_bytes = buffer;
      cfg.mode = coal ? GpuMode::kStreamsCoalesced : GpuMode::kStreams;
      Shredder shredder(cfg);
      const std::uint64_t sample_bytes =
          std::max<std::uint64_t>(2 * buffer, 128ull << 20);
      SyntheticSource source(sample_bytes, 4, cfg.host.reader_bw);
      const auto result = shredder.run(source);
      const double per_byte = result.kernel_totals.virtual_seconds /
                              static_cast<double>(result.kernel_totals.bytes_processed);
      kernel_ms[coal] = per_byte * total * 1e3;
      row_switch[coal] = result.kernel_totals.row_switch_fraction;
    }
    t.add_row({bench::mb_label(buffer), TablePrinter::fmt(kernel_ms[0], 0),
               TablePrinter::fmt(kernel_ms[1], 0),
               TablePrinter::fmt(kernel_ms[0] / kernel_ms[1], 1) + "x",
               TablePrinter::fmt(row_switch[0] * 100, 1),
               TablePrinter::fmt(row_switch[1] * 100, 1)});
  }
  t.print();
  std::printf("(kernel time normalized to 1 GB of data, as in the paper)\n");
  return 0;
}
