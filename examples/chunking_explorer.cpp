// Chunking-scheme explorer: why Shredder keeps Rabin-based content-defined
// chunking and accelerates it rather than weakening it (paper §1-§2).
//
// Compares fixed-size, SampleByte and Rabin CDC on the same evolving
// payload: each version is a local edit (insertions included) of the last,
// and we measure how many bytes each scheme's chunker rediscovers in the
// dedup store.
//
//   ./chunking_explorer [megabytes] [versions]
#include <cstdio>
#include <cstdlib>

#include "chunking/cdc.h"
#include "chunking/fixed.h"
#include "chunking/samplebyte.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "dedup/dedup.h"

int main(int argc, char** argv) {
  using namespace shredder;
  const std::uint64_t megabytes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  const int versions = argc > 2 ? std::atoi(argv[2]) : 4;

  chunking::ChunkerConfig cdc_cfg;
  cdc_cfg.window = 48;
  cdc_cfg.mask_bits = 13;
  const rabin::RabinTables tables(cdc_cfg.window);
  const chunking::SampleByteChunker samplebyte(8192, 16, 5);

  dedup::Deduplicator dedup_fixed, dedup_sample, dedup_cdc;

  // Version 0 plus a chain of edited versions; each edit inserts a little
  // new content (shifting everything after it) and rewrites a little more.
  ByteVec current = random_bytes(megabytes << 20, 11);
  SplitMix64 rng(13);
  std::printf("%-9s %-16s %-16s %-16s\n", "version", "fixed-8K",
              "samplebyte-8K", "rabin-cdc-8K");
  for (int v = 0; v <= versions; ++v) {
    const ByteSpan data = as_bytes(current);
    const auto fixed_stats =
        dedup_fixed.ingest(data, chunking::chunk_fixed(data, 8192));
    const auto sample_stats = dedup_sample.ingest(data, samplebyte.chunk(data));
    const auto cdc_stats =
        dedup_cdc.ingest(data, chunking::chunk_serial(tables, cdc_cfg, data));
    std::printf("v%-8d %5.1f%% dup      %5.1f%% dup      %5.1f%% dup\n", v,
                100 * fixed_stats.dedup_ratio(),
                100 * sample_stats.dedup_ratio(),
                100 * cdc_stats.dedup_ratio());

    // Next version: one insertion + two localized rewrites.
    const auto insert_at = rng.next_below(current.size());
    const auto inserted = random_bytes(1024 + rng.next_below(4096), rng.next());
    current.insert(current.begin() + static_cast<std::ptrdiff_t>(insert_at),
                   inserted.begin(), inserted.end());
    current = mutate_bytes(as_bytes(current), 0.01, rng.next(), 64 * 1024);
  }
  std::printf("\n(every version after v0 is ~99%% identical to its "
              "predecessor, but contains one insertion; fixed-size chunking "
              "loses alignment past it, content-defined chunking does not)\n");
  return 0;
}
