// Cloud-backup deduplication scenario (paper case study II).
//
// Simulates a small VM fleet: a master image, per-VM snapshots with varying
// similarity, a Shredder-accelerated backup server deduplicating against a
// shared index, and a backup-site agent that stores unique chunks and can
// recreate every image bit-exactly.
//
//   ./backup_dedup [num_vms]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "backup/backup_server.h"
#include "common/bytes.h"

int main(int argc, char** argv) {
  using namespace shredder;
  using namespace shredder::backup;
  const unsigned num_vms =
      argc > 1 ? static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10)) : 5;

  ImageRepoConfig repo_cfg;
  repo_cfg.image_bytes = 32ull << 20;
  repo_cfg.segment_bytes = 1ull << 20;
  ImageRepository repo(repo_cfg);

  BackupServerConfig server_cfg;  // Shredder GPU backend by default
  server_cfg.shredder.buffer_bytes = 8ull << 20;
  // Hash chunks on the device too: the pipeline hands chunk+digest pairs to
  // the dedup stage and the host hash stage drops off the critical path.
  server_cfg.fingerprint_on_device = true;
  // batch_link (the default) ships the backup stream as extent-coalesced
  // batches — one wire message per drained buffer, duplicate-pointer runs
  // collapsed to {first, count} extents (docs/backup_wire.md) — instead of
  // one message per chunk.
  BackupServer server(server_cfg);
  BackupAgent agent;

  std::printf("backing up %u VMs cloned from one %s master image...\n\n",
              num_vms, human_bytes(repo_cfg.image_bytes).c_str());
  std::uint64_t logical = 0;
  for (unsigned vm = 0; vm < num_vms; ++vm) {
    // Each VM diverges a little more from the master.
    const double divergence = 0.04 * static_cast<double>(vm);
    const auto image = repo.snapshot(divergence, vm + 1);
    const auto stats = server.backup_image("vm-" + std::to_string(vm),
                                           as_bytes(image), repo, agent);
    logical += stats.bytes;
    std::printf("vm-%u: %6.2f Gbps backup bandwidth | %5.1f%% duplicate "
                "chunks | %llu chunks in %llu wire messages (%llu extents, "
                "%s) | verified: %s\n",
                vm, stats.backup_bandwidth_gbps,
                100.0 * static_cast<double>(stats.duplicate_chunks) /
                    static_cast<double>(stats.chunks),
                static_cast<unsigned long long>(stats.chunks),
                static_cast<unsigned long long>(stats.link_messages),
                static_cast<unsigned long long>(stats.link_extents),
                human_bytes(stats.wire_bytes).c_str(),
                stats.verified ? "yes" : "NO");
  }

  std::printf("\nfleet logical data: %s; stored at backup site: %s "
              "(dedup factor %.1fx, %llu unique chunks)\n",
              human_bytes(logical).c_str(),
              human_bytes(agent.unique_bytes()).c_str(),
              static_cast<double>(logical) /
                  static_cast<double>(agent.unique_bytes()),
              static_cast<unsigned long long>(agent.unique_chunks()));
  return 0;
}
