// Quickstart: chunk a stream with Shredder and inspect the results.
//
// Builds a Shredder instance with the paper's default configuration
// (48-byte Rabin window, 13-bit marker => ~8 KB expected chunks), runs it
// over 64 MB of synthetic data, and prints the chunks' statistics plus the
// pipeline's virtual-time breakdown under the calibrated C2050 model.
//
//   ./quickstart [megabytes]
#include <cstdio>
#include <cstdlib>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/shredder.h"

int main(int argc, char** argv) {
  using namespace shredder;
  const std::uint64_t megabytes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;

  // 1. Configure. ShredderConfig::chunker controls boundary selection;
  //    mode selects the optimization level (kStreamsCoalesced = the full
  //    paper system: pinned ring + double buffering + coalesced kernel).
  core::ShredderConfig config;
  config.chunker.window = 48;
  config.chunker.mask_bits = 13;
  config.chunker.min_size = 2 * 1024;
  config.chunker.max_size = 64 * 1024;
  config.buffer_bytes = 16ull << 20;
  config.mode = core::GpuMode::kStreamsCoalesced;
  core::Shredder shredder(config);

  // 2. Run over a data source. Chunks stream out through a ChunkSink: one
  //    batch per drained pipeline buffer, spans over everything the buffer
  //    finalized — no per-chunk dispatch. (The old per-chunk callback
  //    overloads still exist as thin shims over this batch path.)
  struct StatsSink final : shredder::ChunkSink {
    Summary sizes;
    std::uint64_t batches = 0;
    void on_batch(const shredder::ChunkBatchView& batch) override {
      ++batches;
      for (const auto& c : batch.chunks) {
        sizes.add(static_cast<double>(c.size));
      }
      // batch.chunk_bytes(i) would hand us the chunk's payload here: runs
      // over an in-memory span always carry payload views.
    }
  } sink;
  const auto data = random_bytes(megabytes << 20, /*seed=*/1);
  const auto result = shredder.run(as_bytes(data), sink);
  Summary& sizes = sink.sizes;

  // 3. Inspect.
  std::printf("chunked %s into %zu chunks (%llu sink batches)\n",
              human_bytes(result.total_bytes).c_str(), result.chunks.size(),
              static_cast<unsigned long long>(sink.batches));
  std::printf("chunk sizes: mean %.0f B, min %.0f, max %.0f (bounds: %llu..%llu)\n",
              sizes.mean(), sizes.min(), sizes.max(),
              static_cast<unsigned long long>(config.chunker.min_size),
              static_cast<unsigned long long>(config.chunker.max_size));
  std::printf("\nvirtual pipeline (calibrated Tesla C2050 + X5650 host):\n");
  const auto& s = result.mean_stage_seconds;
  std::printf("  per %s buffer: reader %.2f ms | transfer %.2f ms | kernel "
              "%.2f ms | store %.3f ms\n",
              human_bytes(config.buffer_bytes).c_str(), s.reader * 1e3,
              s.transfer * 1e3, s.kernel * 1e3, s.store * 1e3);
  std::printf("  end-to-end: %.1f ms pipelined (%.1f ms serialized) -> %s\n",
              result.virtual_seconds * 1e3, result.serialized_seconds * 1e3,
              human_rate(result.virtual_throughput_bps).c_str());
  std::printf("  kernel breakdown: compute %.1f ms, memory %.1f ms "
              "(row-switch fraction %.3f)\n",
              result.kernel_totals.compute_seconds * 1e3,
              result.kernel_totals.memory_seconds * 1e3,
              result.kernel_totals.row_switch_fraction);
  std::printf("  host wall time for this simulated run: %.0f ms\n",
              result.wall_seconds * 1e3);
  return 0;
}
