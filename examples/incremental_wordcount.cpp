// Incremental MapReduce scenario (paper case study I).
//
// Uploads a text corpus into Inc-HDFS through the Shredder-enabled client
// (content-defined, record-aligned splits), runs word-count once to prime
// the memoization server, then edits a slice of the corpus and reruns —
// showing how many map/reduce tasks the memoized runtime skips, and that
// the result matches a from-scratch run.
//
//   ./incremental_wordcount [megabytes] [change_percent]
#include <cstdio>
#include <cstdlib>

#include "common/bytes.h"
#include "core/shredder.h"
#include "inchdfs/hdfs.h"
#include "inchdfs/inc_hdfs.h"
#include "inchdfs/jobs.h"
#include "inchdfs/textgen.h"

int main(int argc, char** argv) {
  using namespace shredder;
  using namespace shredder::inchdfs;
  const std::uint64_t megabytes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  const double change =
      argc > 2 ? std::strtod(argv[2], nullptr) / 100.0 : 0.05;

  MiniHdfs fs(20);
  IncHdfsClient client(fs);
  core::ShredderConfig sc;
  sc.chunker.mask_bits = 16;  // ~64 KB splits
  sc.chunker.min_size = 16 * 1024;
  sc.chunker.max_size = 256 * 1024;
  core::Shredder shredder(sc);
  TextInputFormat format;

  const std::string v1 = make_text_corpus(megabytes << 20, 7);
  auto up = client.copy_from_local_gpu("corpus-v1", as_bytes(v1), format,
                                       shredder);
  std::printf("uploaded v1: %llu blocks (%s), GPU chunking virtual time "
              "%.1f ms\n",
              static_cast<unsigned long long>(up.blocks),
              human_bytes(up.bytes).c_str(),
              up.chunking_virtual_seconds * 1e3);

  MapReduceEngine engine;
  MemoServer memo;
  const auto job = make_wordcount_job(16);
  const auto first = engine.run(job, client.read_splits("corpus-v1"), &memo);
  std::printf("initial run: %llu map tasks, %.1f ms\n",
              static_cast<unsigned long long>(first.stats.map_tasks),
              first.stats.wall_seconds * 1e3);

  const std::string v2 = mutate_text_corpus(v1, change, 8);
  client.copy_from_local_gpu("corpus-v2", as_bytes(v2), format, shredder);
  const auto splits_v2 = client.read_splits("corpus-v2");

  const auto incremental = engine.run(job, splits_v2, &memo);
  std::printf("\nafter editing %.0f%% of the corpus:\n", change * 100);
  std::printf("  incremental run: %llu/%llu map tasks reused, "
              "%llu/%llu reducers reused, %.1f ms\n",
              static_cast<unsigned long long>(incremental.stats.map_reused),
              static_cast<unsigned long long>(incremental.stats.map_tasks),
              static_cast<unsigned long long>(incremental.stats.reduce_reused),
              static_cast<unsigned long long>(incremental.stats.reduce_tasks),
              incremental.stats.wall_seconds * 1e3);

  const auto scratch = engine.run(job, splits_v2, nullptr);
  std::printf("  from-scratch run: %.1f ms -> speedup %.1fx, outputs %s\n",
              scratch.stats.wall_seconds * 1e3,
              scratch.stats.wall_seconds / incremental.stats.wall_seconds,
              scratch.output == incremental.output ? "identical"
                                                   : "DIFFER (bug!)");
  std::printf("\nmost frequent words:\n");
  // Outputs are count-per-word; show a few heavy hitters.
  std::uint64_t shown = 0;
  std::vector<std::pair<std::uint64_t, std::string>> top;
  for (const auto& [word, count] : incremental.output) {
    top.emplace_back(std::strtoull(count.c_str(), nullptr, 10), word);
  }
  std::sort(top.rbegin(), top.rend());
  for (const auto& [count, word] : top) {
    if (++shown > 5) break;
    std::printf("  %-10s %llu\n", word.c_str(),
                static_cast<unsigned long long>(count));
  }
  return 0;
}
