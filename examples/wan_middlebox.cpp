// WAN redundancy-elimination middlebox scenario (paper §9 future work).
//
// A nightly replication job ships a dataset across a WAN link bracketed by
// a pair of Shredder-powered middleboxes. Each night a few percent of the
// dataset changes; the sender tokenizes previously-seen chunks and the
// receiver reconstructs the byte stream exactly.
//
//   ./wan_middlebox [megabytes] [nights]
#include <cstdio>
#include <cstdlib>

#include "common/bytes.h"
#include "common/rng.h"
#include "redelim/middlebox.h"

int main(int argc, char** argv) {
  using namespace shredder;
  using namespace shredder::redelim;
  const std::uint64_t megabytes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32;
  const int nights = argc > 2 ? std::atoi(argv[2]) : 5;

  core::ShredderConfig cfg;
  cfg.chunker.mask_bits = 13;  // ~8 KB chunks
  cfg.chunker.min_size = 2 * 1024;
  cfg.chunker.max_size = 64 * 1024;
  cfg.buffer_bytes = 8ull << 20;
  core::Shredder shredder(cfg);

  SenderMiddlebox sender(shredder, 256ull << 20);
  ReceiverMiddlebox receiver(256ull << 20);

  ByteVec dataset = random_bytes(megabytes << 20, 23);
  SplitMix64 rng(29);
  std::uint64_t raw_total = 0, wire_total = 0;
  std::printf("replicating %s nightly over the middlebox pair...\n\n",
              human_bytes(dataset.size()).c_str());
  for (int night = 0; night < nights; ++night) {
    const auto encoded = sender.encode(as_bytes(dataset));
    const auto decoded = receiver.decode(encoded);
    const bool ok = decoded == dataset;
    raw_total += encoded.input_bytes;
    wire_total += encoded.wire_bytes;
    std::printf("night %d: %s on the wire (%.1f%% saved, %llu/%zu tokens) "
                "— receiver copy %s\n",
                night, human_bytes(encoded.wire_bytes).c_str(),
                100.0 * encoded.savings(),
                static_cast<unsigned long long>(encoded.tokens),
                encoded.segments.size(), ok ? "verified" : "CORRUPT");
    // ~3% of the dataset changes before the next replication.
    dataset = mutate_bytes(as_bytes(dataset), 0.03, rng.next());
  }
  std::printf("\ntotal: %s shipped instead of %s (%.1fx bandwidth "
              "reduction)\n",
              human_bytes(wire_total).c_str(), human_bytes(raw_total).c_str(),
              static_cast<double>(raw_total) / static_cast<double>(wire_total));
  return 0;
}
