// Multi-tenant chunking service: 8 client streams share one GPU pipeline.
//
// Spins up a ChunkingService, feeds it eight synthetic tenant streams from
// eight producer threads (mixed weights, so two "premium" tenants get a
// larger share of device dispatches), and prints the per-tenant and
// aggregate reports: virtual throughput per stream, backpressure high-water
// marks, device-engine occupancy and the aggregate speedup over what a
// dedicated single-stream pipeline would deliver.
//
//   ./chunking_service [megabytes-per-tenant]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/stats.h"
#include "core/source.h"
#include "service/service.h"

int main(int argc, char** argv) {
  using namespace shredder;
  const std::uint64_t megabytes =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  constexpr std::size_t kTenants = 8;

  // 1. One long-lived service instance per device. The chunker settings are
  //    service-wide (all tenants share one set of Rabin tables).
  service::ServiceConfig config;
  config.chunker.window = 48;
  config.chunker.mask_bits = 13;
  config.chunker.min_size = 2 * 1024;
  config.chunker.max_size = 64 * 1024;
  config.buffer_bytes = 1ull << 20;
  service::ChunkingService svc(config);

  // 2. Admit eight tenants. Tenants 0 and 1 are "premium": weight 4 gives
  //    them 4x the device dispatches of a weight-1 tenant under contention.
  //    Each tenant consumes through a ChunkSink — one batch per drained
  //    device buffer instead of one upcall per chunk.
  struct CountingSink final : shredder::ChunkSink {
    std::uint64_t batches = 0;
    std::uint64_t chunks = 0;
    void on_batch(const shredder::ChunkBatchView& batch) override {
      ++batches;
      chunks += batch.chunks.size();
    }
  };
  std::vector<CountingSink> sinks(kTenants);
  std::vector<service::ChunkingService::StreamId> ids;
  for (std::size_t k = 0; k < kTenants; ++k) {
    service::TenantOptions opts;
    opts.name = k < 2 ? "premium-" : "standard-";
    opts.name += std::to_string(k);
    opts.weight = k < 2 ? 4 : 1;
    opts.sink = &sinks[k];
    ids.push_back(svc.open(std::move(opts)));
  }

  // 3. Eight producer threads stream synthetic data concurrently. submit()
  //    blocks whenever a tenant outruns its share of the device: that is
  //    the service's backpressure, not an error.
  std::vector<std::thread> producers;
  for (std::size_t k = 0; k < kTenants; ++k) {
    producers.emplace_back([&, k] {
      core::SyntheticSource source(megabytes << 20, /*seed=*/1000 + k,
                                   config.host.reader_bw);
      ByteVec buf(1 << 20);
      for (;;) {
        const std::size_t n = source.read({buf.data(), buf.size()});
        if (n == 0) break;
        svc.submit(ids[k], ByteSpan{buf.data(), n});
      }
      svc.finish(ids[k]);
    });
  }
  for (auto& t : producers) t.join();

  // 4. Per-tenant reports. The sink saw every chunk in batches of one
  //    drained buffer each — compare "batches" to "chunks" for the dispatch
  //    amortization.
  std::printf("%-12s %8s %9s %8s %8s %10s %10s\n", "tenant", "weight", "MB",
              "chunks", "batches", "MB/s(virt)", "max-queue");
  for (std::size_t k = 0; k < kTenants; ++k) {
    const auto result = svc.wait(ids[k]);
    const auto& r = result.report;
    std::printf("%-12s %8u %9.1f %8llu %8llu %10.1f %10zu\n", r.name.c_str(),
                r.weight, static_cast<double>(r.total_bytes) / 1e6,
                static_cast<unsigned long long>(r.n_chunks),
                static_cast<unsigned long long>(sinks[k].batches),
                r.virtual_throughput_bps / 1e6, r.max_queue_depth);
  }

  // 5. Aggregate: one device served all eight streams concurrently.
  const auto report = svc.shutdown();
  std::printf("\naggregate: %s over %llu buffers from %zu tenants\n",
              human_rate(report.aggregate_throughput_bps).c_str(),
              static_cast<unsigned long long>(report.n_buffers),
              report.n_tenants);
  std::printf("device:    makespan %.1f ms | compute busy %.0f%% | "
              "h2d busy %.0f%% | d2h busy %.0f%%\n",
              report.virtual_seconds * 1e3,
              100 * report.compute_busy_seconds / report.virtual_seconds,
              100 * report.h2d_busy_seconds / report.virtual_seconds,
              100 * report.d2h_busy_seconds / report.virtual_seconds);
  std::printf("one dedicated stream is reader-bound at ~%s; sharing the "
              "device keeps it busy instead of idle between buffers.\n",
              human_rate(config.host.reader_bw).c_str());
  return 0;
}
